package serve

import (
	"fmt"
	"strings"
	"testing"
)

// csvRows builds a tiny two-group CSV with n data rows.
func csvRows(n int, salt string) []byte {
	var b strings.Builder
	b.WriteString("x,tool,g\n")
	for i := 0; i < n; i++ {
		g := "pass"
		tool := "a" + salt
		if i%2 == 1 {
			g = "fail"
			tool = "b" + salt
		}
		fmt.Fprintf(&b, "%d.%d,%s,%s\n", i, i%7, tool, g)
	}
	return []byte(b.String())
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry(0)
	csv := csvRows(10, "")
	a, err := r.Register("first", csv, "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Register("second-name-ignored", csv, "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("same bytes, different IDs: %s vs %s", a.ID, b.ID)
	}
	if b.Name != "first" {
		t.Fatalf("re-registration replaced the entry: name = %q", b.Name)
	}
	if entries, rows, _ := r.Stats(); entries != 1 || rows != 10 {
		t.Fatalf("Stats() = %d entries, %d rows; want 1, 10", entries, rows)
	}

	// Different parse options on the same bytes are a different dataset.
	c, err := r.Register("forced", csv, "g", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("different parse options produced the same content address")
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	r := NewRegistry(25) // room for two 10-row datasets, not three
	a, _ := r.Register("a", csvRows(10, "a"), "g", nil)
	b, _ := r.Register("b", csvRows(10, "b"), "g", nil)

	// Touch a so b is the LRU victim.
	if _, _, ok := r.Get(a.ID); !ok {
		t.Fatal("a missing before eviction")
	}
	c, _ := r.Register("c", csvRows(10, "c"), "g", nil)

	if _, _, ok := r.Get(b.ID); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, _, ok := r.Get(id); !ok {
			t.Fatalf("%s evicted; want it kept", id)
		}
	}
	if _, _, ev := r.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestRegistryPinBlocksEviction(t *testing.T) {
	r := NewRegistry(25)
	a, _ := r.Register("a", csvRows(10, "a"), "g", nil)
	b, _ := r.Register("b", csvRows(10, "b"), "g", nil)

	// Pin b (the would-be victim), then overflow: a must go instead.
	_, _, release, ok := r.Acquire(b.ID)
	if !ok {
		t.Fatal("Acquire(b) failed")
	}
	if _, _, ok := r.Get(a.ID); !ok { // make b the LRU tail again
		t.Fatal("a missing")
	}
	// Re-order so b is least recently used: touch a after acquiring b.
	r.Register("c", csvRows(10, "c"), "g", nil)

	if _, _, ok := r.Get(b.ID); !ok {
		t.Fatal("pinned dataset was evicted")
	}
	release()
	release() // double release must be a no-op (sync.Once)

	// Unpinned now: the next overflow may evict it.
	r.Register("d", csvRows(10, "d"), "g", nil)
	if entries, rows, _ := r.Stats(); rows > 25 || entries > 2 {
		t.Fatalf("budget not enforced after release: %d entries, %d rows", entries, rows)
	}
}

func TestRegistryOversizedSingleDataset(t *testing.T) {
	r := NewRegistry(5)
	big, err := r.Register("big", csvRows(50, ""), "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.Get(big.ID); !ok {
		t.Fatal("a dataset larger than the budget must still register")
	}
	// The next registration evicts it.
	r.Register("small", csvRows(4, "s"), "g", nil)
	if _, _, ok := r.Get(big.ID); ok {
		t.Fatal("oversized dataset should be evicted once something else arrives")
	}
}

func TestRegistryRejectsBadCSV(t *testing.T) {
	r := NewRegistry(0)
	if _, err := r.Register("bad", []byte("x,y\n1,2\n"), "nope", nil); err == nil {
		t.Fatal("Register with a missing group column must fail")
	}
	if entries, _, _ := r.Stats(); entries != 0 {
		t.Fatalf("failed registration left %d entries", entries)
	}
}
