package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sdadcs/internal/dataset"
	"sdadcs/internal/engine"
	"sdadcs/internal/metrics"
	"sdadcs/internal/obs"
	"sdadcs/internal/report"
	"sdadcs/internal/trace"
)

// JobState names one station of the job lifecycle:
// pending → running → done | failed | canceled.
type JobState string

// Job states.
const (
	JobPending  JobState = "pending"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is returned by Submit when the bounded job queue has no
	// free slot (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned by Submit after Close began (HTTP 503).
	ErrDraining = errors.New("serve: server draining, not accepting jobs")
	// ErrUnknownDataset is returned for dataset IDs not in the registry.
	ErrUnknownDataset = errors.New("serve: unknown dataset")
	// ErrUnknownJob is returned for job IDs never submitted.
	ErrUnknownJob = errors.New("serve: unknown job")
	// errLeaderAborted lands on deduplicated followers whose shared
	// execution was canceled or failed.
	errLeaderAborted = errors.New("serve: deduplicated execution aborted")
)

// Job is one submitted mine. All mutable fields are guarded by mu; the
// immutable identity fields (ID, DatasetID, key, cfg, ds) are set before
// the job is published and never change.
type Job struct {
	ID        string
	DatasetID string
	key       string // dataset ID + canonical config hash: the dedup address
	cfg       engine.Config
	timeout   time.Duration
	ds        *dataset.Dataset
	dsInfo    DatasetInfo
	release   func() // registry unpin; leader-owned, called exactly once

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on reaching a terminal state

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	err      error
	deduped  bool              // follower of another job's execution
	cacheHit bool              // served from the result cache without any execution
	rec      *metrics.Recorder // live while running
	tr       *trace.Tracer     // live while running
	out      *mineOutput       // set when done
}

// JobProgress is the live view of a running mine, distilled from the
// per-job metrics snapshot.
type JobProgress struct {
	LevelsDone     int     `json:"levels_done"`
	MaxDepth       int     `json:"max_depth"`
	NodesEvaluated int64   `json:"nodes_evaluated"`
	SpacesPruned   int64   `json:"spaces_pruned"`
	SDADCalls      int64   `json:"sdad_calls"`
	Threshold      float64 `json:"threshold"`
	TraceEvents    uint64  `json:"trace_events"`
}

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID         string       `json:"id"`
	DatasetID  string       `json:"dataset_id"`
	Algorithm  string       `json:"algorithm"`
	ConfigHash string       `json:"config_hash"`
	State      JobState     `json:"state"`
	Error      string       `json:"error,omitempty"`
	Deduped    bool         `json:"deduplicated,omitempty"`
	CacheHit   bool         `json:"cache_hit,omitempty"`
	Contrasts  int          `json:"contrasts,omitempty"`
	CreatedAt  time.Time    `json:"created_at"`
	StartedAt  *time.Time   `json:"started_at,omitempty"`
	FinishedAt *time.Time   `json:"finished_at,omitempty"`
	Progress   *JobProgress `json:"progress,omitempty"`
}

// algorithm resolves the job's effective algorithm name.
func (j *Job) algorithm() string {
	if j.cfg.Algorithm != "" {
		return j.cfg.Algorithm
	}
	return "sdadcs"
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	alg := j.algorithm()
	st := JobStatus{
		ID:         j.ID,
		DatasetID:  j.DatasetID,
		Algorithm:  alg,
		ConfigHash: j.cfg.CanonicalHash(),
		State:      j.state,
		Deduped:    j.deduped,
		CacheHit:   j.cacheHit,
		CreatedAt:  j.created,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.out != nil {
		st.Contrasts = j.out.Contrasts
	}
	if j.state == JobRunning && j.rec != nil {
		s := j.rec.Snapshot()
		p := &JobProgress{
			LevelsDone:  len(s.Levels),
			MaxDepth:    j.cfg.MaxDepth,
			SDADCalls:   s.SDADCalls,
			Threshold:   s.Threshold,
			TraceEvents: s.TraceEvents,
		}
		if p.MaxDepth == 0 {
			p.MaxDepth = 5 // the documented levelwise default
			if alg == "subgroup" {
				p.MaxDepth = 2 // beam search defaults shallower
			}
		}
		for _, lv := range s.Levels {
			p.NodesEvaluated += lv.Nodes
		}
		p.SpacesPruned = s.TotalPruned()
		st.Progress = p
	}
	return st
}

// State returns the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Output returns the mine output once terminal (nil for failed/canceled).
func (j *Job) Output() (*mineOutput, JobState, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.out, j.state, j.err
}

// TraceSnapshot returns the decision trace: the final snapshot for done
// jobs, a live snapshot for running ones, nil before the job started.
func (j *Job) TraceSnapshot() *trace.Trace {
	j.mu.Lock()
	out, tr := j.out, j.tr
	j.mu.Unlock()
	if out != nil && out.Trace != nil {
		return out.Trace
	}
	if tr != nil {
		return tr.Snapshot() // lock-free ring: safe while mining
	}
	return nil
}

// Dataset returns the dataset explanations should be rendered against:
// the globally-discretized view when the algorithm produced one (its
// contrasts' items name the binned attributes), otherwise the raw dataset.
func (j *Job) Dataset() *dataset.Dataset {
	j.mu.Lock()
	out := j.out
	j.mu.Unlock()
	if out != nil && out.Binned != nil {
		return out.Binned
	}
	return j.ds
}

// liveMetrics returns the running job's instrumentation snapshot.
func (j *Job) liveMetrics() (metrics.Snapshot, bool) {
	j.mu.Lock()
	rec := j.rec
	running := j.state == JobRunning
	j.mu.Unlock()
	if !running || rec == nil {
		return metrics.Snapshot{}, false
	}
	return rec.Snapshot(), true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// finish moves the job to a terminal state exactly once; later calls
// no-op, so an individually-canceled follower is not overwritten by its
// flight's outcome.
func (j *Job) finish(out *mineOutput, err error, c *counters) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now().UTC()
	j.rec = nil
	switch {
	case err == nil:
		j.state = JobDone
		j.out = out
		c.jobsDone.Add(1)
	case errors.Is(err, context.Canceled):
		j.state = JobCanceled
		j.err = err
		c.jobsCanceled.Add(1)
	default:
		j.state = JobFailed
		j.err = err
		c.jobsFailed.Add(1)
	}
	j.mu.Unlock()
	close(j.done)
	j.cancel() // release the context subtree; idempotent
}

// logFinished emits the terminal lifecycle record for a job that just
// left finish(); logged against the job's correlated context so the line
// carries both request_id and job_id.
func (j *Job) logFinished(log *slog.Logger) {
	j.mu.Lock()
	state, err, created, finished := j.state, j.err, j.created, j.finished
	contrasts := 0
	if j.out != nil {
		contrasts = j.out.Contrasts
	}
	deduped := j.deduped
	j.mu.Unlock()
	attrs := []any{
		"state", string(state),
		"algorithm", j.algorithm(),
		"dataset_id", j.DatasetID,
		"contrasts", contrasts,
		"total_ms", float64(finished.Sub(created)) / 1e6,
	}
	if deduped {
		attrs = append(attrs, "deduplicated", true)
	}
	switch state {
	case JobFailed:
		attrs = append(attrs, "error", fmt.Sprint(err))
		log.ErrorContext(j.ctx, "job failed", attrs...)
	case JobCanceled:
		log.InfoContext(j.ctx, "job canceled", attrs...)
	default:
		log.InfoContext(j.ctx, "job done", attrs...)
	}
}

// flight is one singleflight execution: the leader runs the mine; the
// followers (identical dataset + canonical config, submitted while the
// leader was pending or running) share its outcome without costing a
// worker or a queue slot.
type flight struct {
	leader    *Job
	followers []*Job
}

// Manager owns the worker pool, the bounded queue, the job table and the
// dedup/caching discipline.
type Manager struct {
	reg            *Registry
	cache          *resultCache
	queue          chan *Job
	defaultTimeout time.Duration
	counters       *counters
	log            *slog.Logger // component serve.jobs
	mineLog        *slog.Logger // component engine, carried into mine contexts
	queueWait      metrics.Histogram
	miners         *minerTotals

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order
	inflight map[string]*flight
	closed   bool
	seq      atomic.Uint64
}

// newManager starts workers goroutines consuming a queue of queueDepth.
func newManager(reg *Registry, cache *resultCache, workers, queueDepth int, defaultTimeout time.Duration, c *counters, log *slog.Logger) *Manager {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	log = obs.Or(log)
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		reg:            reg,
		cache:          cache,
		queue:          make(chan *Job, queueDepth),
		defaultTimeout: defaultTimeout,
		counters:       c,
		log:            log.With("component", "serve.jobs"),
		mineLog:        log.With("component", "engine"),
		miners:         newMinerTotals(),
		baseCtx:        ctx,
		baseCancel:     cancel,
		jobs:           make(map[string]*Job),
		inflight:       make(map[string]*flight),
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// QueueWait snapshots the queue-wait histogram (pending → running).
func (m *Manager) QueueWait() metrics.HistogramSnapshot {
	return m.queueWait.Snapshot()
}

// MinerTotals snapshots the per-algorithm accumulated mining effort.
func (m *Manager) MinerTotals() []AlgorithmTotals {
	return m.miners.snapshot()
}

// Submit validates, resolves the dataset, and either completes the job
// from the result cache, attaches it to an in-flight identical execution,
// or enqueues it as a new leader. ErrQueueFull means every queue slot is
// taken (HTTP 429); ErrDraining means Close began.
//
// ctx is the admission context: its request correlation ID (obs) is
// adopted into the job's own context so every later lifecycle record can
// be joined back to the submitting request. Cancellation of ctx does NOT
// cancel the job — jobs outlive their submitting request by design.
func (m *Manager) Submit(ctx context.Context, datasetID string, cfg engine.Config, timeout time.Duration) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ds, info, release, ok := m.reg.Acquire(datasetID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDataset, datasetID)
	}
	if timeout <= 0 {
		timeout = m.defaultTimeout
	}
	id := fmt.Sprintf("job_%08x", m.seq.Add(1))
	// The job context carries the correlation pair (request ID adopted
	// from admission, its own job ID) plus the engine-facing logger, so
	// layers below the manager emit joined records without knowing about
	// the service at all.
	jctx := obs.WithJobID(obs.WithRequestID(m.baseCtx, obs.RequestID(ctx)), id)
	jctx = obs.WithLogger(jctx, m.mineLog)
	jctx, cancel := context.WithCancel(jctx)
	job := &Job{
		ID:        id,
		DatasetID: datasetID,
		key:       datasetID + "/" + cfg.CanonicalHash(),
		cfg:       cfg,
		timeout:   timeout,
		ds:        ds,
		dsInfo:    info,
		release:   release,
		ctx:       jctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     JobPending,
		created:   time.Now().UTC(),
	}
	accepted := func(outcome string) {
		m.counters.jobsSubmitted.Add(1)
		m.log.InfoContext(job.ctx, "job accepted",
			"outcome", outcome,
			"dataset_id", datasetID,
			"algorithm", job.algorithm(),
			"config_hash", cfg.CanonicalHash())
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		release()
		m.log.WarnContext(ctx, "job rejected: draining", "dataset_id", datasetID)
		return nil, ErrDraining
	}

	// Result cache: identical (dataset, config) already mined — the job is
	// born done, costing neither a worker nor a queue slot.
	if out, hit := m.cache.get(job.key); hit {
		m.publishLocked(job)
		m.mu.Unlock()
		job.mu.Lock()
		job.cacheHit = true
		job.mu.Unlock()
		m.counters.cacheHits.Add(1)
		accepted("cache_hit")
		job.finish(out, nil, m.counters)
		job.logFinished(m.log)
		cancel()
		release()
		return job, nil
	}

	// Singleflight: an identical execution is pending or running — attach
	// as a follower and share its outcome.
	if fl, ok := m.inflight[job.key]; ok {
		job.mu.Lock()
		job.deduped = true
		job.mu.Unlock()
		fl.followers = append(fl.followers, job)
		m.publishLocked(job)
		m.mu.Unlock()
		m.counters.dedupHits.Add(1)
		accepted("deduplicated")
		release() // the leader's pin keeps the dataset alive
		return job, nil
	}

	// Leader: reserve the flight, then a queue slot.
	select {
	case m.queue <- job:
		m.inflight[job.key] = &flight{leader: job}
		m.publishLocked(job)
		m.mu.Unlock()
		accepted("queued")
		return job, nil
	default:
		m.mu.Unlock()
		cancel()
		release()
		m.log.WarnContext(ctx, "job rejected: queue full", "dataset_id", datasetID)
		return nil, ErrQueueFull
	}
}

// publishLocked records the job in the table; m.mu must be held.
func (m *Manager) publishLocked(j *Job) {
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// QueueDepth reports the currently-occupied queue slots.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Cancel cancels a job: a running mine is interrupted through its context
// (the SDAD-CS recursion and merge loop check it, so interruption is
// prompt even mid-discretization); a pending job is finished as canceled
// immediately. Terminal jobs are left untouched.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	job.cancel()
	job.mu.Lock()
	pending := job.state == JobPending
	job.mu.Unlock()
	if pending {
		// Queued leaders and followers land in canceled now; the worker
		// (or the leader's flight completion) later observes the terminal
		// state and no-ops on this job.
		job.finish(nil, context.Canceled, m.counters)
		job.logFinished(m.log)
	}
	return job, nil
}

// worker consumes the queue until Close closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// mine executes the engine call with panic isolation: a panicking
// algorithm marks this one job failed (stack preserved in the log, the
// job_panics counter incremented) instead of unwinding the worker
// goroutine and killing the process.
func (m *Manager) mine(ctx context.Context, job *Job, cfg engine.Config) (res engine.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			m.counters.jobPanics.Add(1)
			m.log.ErrorContext(job.ctx, "job panicked",
				"algorithm", job.algorithm(),
				"dataset_id", job.DatasetID,
				"panic", fmt.Sprint(p),
				"stack", string(debug.Stack()))
			err = fmt.Errorf("serve: job panicked: %v", p)
		}
	}()
	m.counters.mineExecutions.Add(1)
	return engine.MineContext(ctx, job.ds, cfg)
}

// runJob executes one leader job and completes its flight.
func (m *Manager) runJob(job *Job) {
	if err := job.ctx.Err(); err != nil {
		// Canceled while queued (or the manager is shutting down).
		m.finishFlight(job, nil, err)
		return
	}
	rec := metrics.New()
	tr := trace.New(0)
	job.mu.Lock()
	if job.state.Terminal() { // canceled between the ctx check and here
		job.mu.Unlock()
		m.finishFlight(job, nil, context.Canceled)
		return
	}
	job.state = JobRunning
	job.started = time.Now().UTC()
	wait := job.started.Sub(job.created)
	job.rec = rec
	job.tr = tr
	m.counters.jobsRunning.Add(1)
	job.mu.Unlock()
	defer m.counters.jobsRunning.Add(-1)
	m.queueWait.Observe(wait)
	m.log.InfoContext(job.ctx, "job running",
		"algorithm", job.algorithm(),
		"dataset_id", job.DatasetID,
		"queue_wait_ms", float64(wait)/1e6)

	cfg := job.cfg
	cfg.Metrics = rec
	cfg.Trace = tr

	runCtx := job.ctx
	if job.timeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(job.ctx, job.timeout)
		defer tcancel()
	}

	mineStart := time.Now()
	res, err := m.mine(runCtx, job, cfg)
	m.miners.observe(job.algorithm(), rec.Snapshot(), len(res.Contrasts), time.Since(mineStart))
	if err != nil {
		m.finishFlight(job, nil, err)
		return
	}

	// Globally-discretizing algorithms (mvd, entropy) emit contrasts whose
	// items refer to the binned view, so render against it when present.
	renderDS := job.ds
	if res.Binned != nil {
		renderDS = res.Binned
	}
	var buf bytes.Buffer
	if rerr := report.JSON(&buf, renderDS, res.Contrasts); rerr != nil {
		m.finishFlight(job, nil, fmt.Errorf("serve: rendering result: %w", rerr))
		return
	}
	out := &mineOutput{
		JSON:      buf.Bytes(),
		Contrasts: len(res.Contrasts),
		Stats:     res.Stats,
		Trace:     res.Trace,
		Metrics:   res.Metrics,
		Binned:    res.Binned,
	}
	m.cache.put(job.key, out)
	m.finishFlight(job, out, nil)
}

// finishFlight settles the leader and every follower of its flight, then
// releases the leader's dataset pin.
func (m *Manager) finishFlight(leader *Job, out *mineOutput, err error) {
	m.mu.Lock()
	fl := m.inflight[leader.key]
	delete(m.inflight, leader.key)
	m.mu.Unlock()

	leader.finish(out, err, m.counters)
	leader.logFinished(m.log)
	if fl != nil {
		for _, f := range fl.followers {
			if err == nil {
				f.finish(out, nil, m.counters)
			} else {
				f.finish(nil, fmt.Errorf("%w: %v", errLeaderAborted, err), m.counters)
			}
			f.logFinished(m.log)
		}
	}
	leader.release()
}

// Close drains the manager: no new submissions, queued jobs keep running
// until the grace period expires, then every remaining context is
// canceled. Close returns only after all worker goroutines exited, so a
// returned Close is the no-goroutine-leak guarantee the shutdown tests
// lean on. Safe to call more than once.
func (m *Manager) Close(grace time.Duration) {
	m.mu.Lock()
	first := !m.closed
	m.closed = true
	m.mu.Unlock()
	if first {
		close(m.queue)
		m.log.Info("job manager draining", "grace", grace.String())
	}

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	if grace > 0 {
		t := time.NewTimer(grace)
		select {
		case <-workersDone:
			t.Stop()
		case <-t.C:
		}
	}
	m.baseCancel() // cancels every job context still alive
	<-workersDone
	if first {
		m.log.Info("job manager drained")
	}
}
