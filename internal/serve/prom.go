package serve

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"sdadcs/internal/metrics"
	"sdadcs/internal/obs"
)

// AlgorithmTotals is the accumulated mining effort of one algorithm
// across every execution the service ran (cache hits and deduplicated
// followers cost no execution, so they do not accumulate here).
type AlgorithmTotals struct {
	Algorithm    string
	Jobs         int64
	Contrasts    int64
	Nodes        int64
	Pruned       int64
	SDADCalls    int64
	BitmapAndOps int64
	WallNanos    int64
	// Incremental re-mine gate totals (stream monitors mining through the
	// service): frontier nodes replayed unchanged vs re-evaluated.
	GateStable int64
	GateDirty  int64
}

// minerTotals folds per-job metrics snapshots into per-algorithm running
// totals at job completion. Unlike the live Active map of /v1/metrics
// (which vanishes when a job finishes), these are monotone counters fit
// for Prometheus rate() queries.
type minerTotals struct {
	mu   sync.Mutex
	algs map[string]*AlgorithmTotals
}

func newMinerTotals() *minerTotals {
	return &minerTotals{algs: make(map[string]*AlgorithmTotals)}
}

func (t *minerTotals) observe(alg string, s metrics.Snapshot, contrasts int, wall time.Duration) {
	var nodes int64
	for _, lv := range s.Levels {
		nodes += lv.Nodes
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.algs[alg]
	if !ok {
		a = &AlgorithmTotals{Algorithm: alg}
		t.algs[alg] = a
	}
	a.Jobs++
	a.Contrasts += int64(contrasts)
	a.Nodes += nodes
	a.Pruned += s.TotalPruned()
	a.SDADCalls += s.SDADCalls
	a.BitmapAndOps += s.BitmapAndOps
	a.WallNanos += int64(wall)
	a.GateStable += s.GateStableNodes
	a.GateDirty += s.GateDirtyNodes
}

// snapshot copies the totals sorted by algorithm name (deterministic
// exposition order).
func (t *minerTotals) snapshot() []AlgorithmTotals {
	t.mu.Lock()
	out := make([]AlgorithmTotals, 0, len(t.algs))
	for _, a := range t.algs {
		out = append(out, *a)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Algorithm < out[j].Algorithm })
	return out
}

// algFamilies renders the per-algorithm totals as labeled families.
func algFamilies(totals []AlgorithmTotals) []obs.Family {
	if len(totals) == 0 {
		return nil
	}
	mk := func(name, help string, get func(AlgorithmTotals) float64) obs.Family {
		f := obs.Family{Name: name, Help: help, Type: obs.TypeCounter}
		for _, a := range totals {
			f.Samples = append(f.Samples, obs.Sample{
				Labels: []obs.Label{{Name: "algorithm", Value: a.Algorithm}},
				Value:  get(a),
			})
		}
		return f
	}
	return []obs.Family{
		mk("sdadcs_miner_jobs_total", "Mine executions completed, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.Jobs) }),
		mk("sdadcs_miner_contrasts_total", "Contrast patterns produced, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.Contrasts) }),
		mk("sdadcs_miner_nodes_total", "Search nodes evaluated, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.Nodes) }),
		mk("sdadcs_miner_pruned_total", "Search spaces pruned, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.Pruned) }),
		mk("sdadcs_miner_sdad_calls_total", "SDAD-CS discretization invocations, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.SDADCalls) }),
		mk("sdadcs_miner_bitmap_and_ops_total", "Bitmap AND intersections, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.BitmapAndOps) }),
		mk("sdadcs_miner_gate_stable_nodes_total", "Incremental re-mine frontier nodes replayed unchanged, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.GateStable) }),
		mk("sdadcs_miner_gate_dirty_nodes_total", "Incremental re-mine frontier nodes re-evaluated, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.GateDirty) }),
		mk("sdadcs_miner_wall_seconds_total", "Cumulative mine wall time, by algorithm.",
			func(a AlgorithmTotals) float64 { return float64(a.WallNanos) / 1e9 }),
	}
}

// promFamilies assembles the full exposition: serve-level counters (the
// same state as JSON /v1/metrics), queue and cache behavior, registry and
// index lifecycle, per-route RED series, per-algorithm miner totals, and
// Go runtime stats.
func (s *Server) promFamilies() []obs.Family {
	entries, rows, evictions := s.reg.Stats()
	ixCached, ixBuilds, ixEvictions := s.reg.IndexStats()

	fams := []obs.Family{
		obs.Gauge("sdadcs_serve_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds()),
		obs.Gauge("sdadcs_serve_ready", "Readiness gate: 1 while accepting traffic, 0 once draining.", b2f(s.Ready())),
		obs.Gauge("sdadcs_serve_datasets_registered", "Datasets currently in the registry.", float64(entries)),
		obs.Gauge("sdadcs_serve_dataset_rows", "Total rows across registered datasets.", float64(rows)),
		obs.Counter("sdadcs_serve_dataset_evictions_total", "Datasets evicted by the registry row budget.", float64(evictions)),
		obs.Counter("sdadcs_serve_index_builds_total", "Bitmap-index constructions across all datasets ever registered.", float64(ixBuilds)),
		obs.Gauge("sdadcs_serve_index_cached", "Live datasets currently holding a built bitmap index.", float64(ixCached)),
		obs.Counter("sdadcs_serve_index_evictions_total", "Bitmap indexes dropped by registry eviction.", float64(ixEvictions)),
		obs.Counter("sdadcs_serve_jobs_submitted_total", "Jobs accepted by Submit.", float64(s.counters.jobsSubmitted.Load())),
		obs.Counter("sdadcs_serve_jobs_done_total", "Jobs finished successfully.", float64(s.counters.jobsDone.Load())),
		obs.Counter("sdadcs_serve_jobs_failed_total", "Jobs finished in error.", float64(s.counters.jobsFailed.Load())),
		obs.Counter("sdadcs_serve_jobs_canceled_total", "Jobs canceled before completion.", float64(s.counters.jobsCanceled.Load())),
		obs.Counter("sdadcs_serve_job_panics_total", "Mine executions that panicked and were isolated into failed jobs.", float64(s.counters.jobPanics.Load())),
		obs.Gauge("sdadcs_serve_jobs_running", "Jobs currently executing.", float64(s.counters.jobsRunning.Load())),
		obs.Gauge("sdadcs_serve_queue_depth", "Occupied job-queue slots.", float64(s.mgr.QueueDepth())),
		obs.Gauge("sdadcs_serve_queue_capacity", "Total job-queue slots.", float64(s.opts.QueueDepth)),
		obs.HistogramFamily("sdadcs_serve_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.", nil, s.mgr.QueueWait()),
		obs.Counter("sdadcs_serve_mine_executions_total", "Actual engine executions (excludes cache hits and deduplicated followers).", float64(s.counters.mineExecutions.Load())),
		obs.Counter("sdadcs_serve_result_cache_hits_total", "Jobs answered from the result cache.", float64(s.counters.cacheHits.Load())),
		obs.Counter("sdadcs_serve_dedup_hits_total", "Jobs deduplicated onto an in-flight identical execution.", float64(s.counters.dedupHits.Load())),
		obs.Gauge("sdadcs_serve_result_cache_entries", "Entries in the result cache.", float64(s.cache.len())),
		obs.Counter("sdadcs_serve_result_cache_evictions_total", "Result-cache entries dropped by LRU pressure.", float64(s.cache.evicted())),
	}
	if s.opts.Store != nil {
		h := s.opts.Store.Health()
		cold, demotions, promotions := s.reg.ColdStats()
		fams = append(fams,
			obs.Counter("sdadcs_store_wal_appends_total", "Records appended to the dataset store's write-ahead log.", float64(h.WALAppends)),
			obs.Counter("sdadcs_store_wal_fsyncs_total", "Fsync calls acknowledging WAL records.", float64(h.WALFsyncs)),
			obs.Counter("sdadcs_store_checkpoints_total", "Checkpoints folding the WAL into fresh segment files.", float64(h.Checkpoints)),
			obs.Counter("sdadcs_store_recoveries_total", "Store opens that recovered prior on-disk state.", float64(h.Recoveries)),
			obs.Counter("sdadcs_store_cold_loads_total", "Datasets decoded from cold segment files on demand.", float64(h.ColdLoads)),
			obs.Counter("sdadcs_store_corrupt_segments_total", "Segment files that failed integrity checks and were quarantined.", float64(h.CorruptSegments)),
			obs.Gauge("sdadcs_store_datasets_on_disk", "Datasets currently persisted in the store.", float64(h.Datasets)),
			obs.Gauge("sdadcs_store_cold_datasets", "Registry entries currently demoted to the on-disk cold tier.", float64(cold)),
			obs.Counter("sdadcs_store_cold_demotions_total", "Registry evictions that became cold-tier demotions.", float64(demotions)),
			obs.Counter("sdadcs_store_cold_promotions_total", "Cold-tier entries promoted back into memory by demand.", float64(promotions)),
		)
	}
	fams = append(fams, algFamilies(s.mgr.MinerTotals())...)
	fams = append(fams, obs.REDFamilies("sdadcs_http_", s.httpm)...)
	fams = append(fams, obs.RuntimeFamilies()...)
	return fams
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// handlePrometheus writes the text exposition (v0.0.4).
func (s *Server) handlePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.WriteExposition(w, s.promFamilies()); err != nil {
		s.log.Error("prometheus exposition failed", "component", "serve.http", "error", err)
	}
}
