package serve

import (
	"log/slog"
	"runtime"
	"sync/atomic"
	"time"

	"sdadcs/internal/metrics"
	"sdadcs/internal/obs"
	"sdadcs/internal/store"
)

// Options sizes the service. The zero value is usable.
type Options struct {
	// Workers is the mining worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue; a full queue turns new
	// submissions into 429s (default 64).
	QueueDepth int
	// RowBudget bounds the dataset registry by total registered rows;
	// least-recently-used unpinned datasets are evicted past it
	// (default 0 = unbounded).
	RowBudget int
	// CacheEntries bounds the result cache (default 128).
	CacheEntries int
	// DefaultTimeout applies to jobs that carry no deadline of their own
	// (default 5m; set negative for none).
	DefaultTimeout time.Duration
	// MaxUploadBytes bounds a dataset registration body (default 64 MiB).
	MaxUploadBytes int64
	// Logger receives the structured service log (access lines, job
	// lifecycle, registry events); nil disables logging. Component
	// scoping and request/job correlation IDs are added by the server.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// handler (default off: profiling endpoints are operator surface).
	EnablePprof bool
	// Store is the optional persistence backend (cmd/serve -data-dir):
	// registrations are written through to it, the registry rehydrates
	// from it at boot, and LRU eviction demotes datasets to its cold
	// on-disk tier instead of dropping them. Nil keeps the fully
	// in-memory behavior unchanged.
	Store *store.Store
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 128
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 5 * time.Minute
	}
	if o.DefaultTimeout < 0 {
		o.DefaultTimeout = 0
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 64 << 20
	}
}

// counters is the serve-level operational state behind /v1/metrics.
type counters struct {
	jobsSubmitted  atomic.Int64
	jobsDone       atomic.Int64
	jobsFailed     atomic.Int64
	jobsCanceled   atomic.Int64
	jobsRunning    atomic.Int64
	jobPanics      atomic.Int64
	mineExecutions atomic.Int64
	cacheHits      atomic.Int64
	dedupHits      atomic.Int64
}

// ServerMetrics is the /v1/metrics payload: serve-level counters plus one
// internal/metrics snapshot per running job (the same JSON shape
// cmd/monitor -metrics serves). The JSON shape is a compatibility
// surface — new series land in the Prometheus exposition
// (/v1/metrics?format=prometheus), not here.
type ServerMetrics struct {
	UptimeNanos        int64 `json:"uptime_ns"`
	DatasetsRegistered int   `json:"datasets_registered"`
	DatasetRows        int   `json:"dataset_rows"`
	DatasetEvictions   int64 `json:"dataset_evictions"`
	JobsSubmitted      int64 `json:"jobs_submitted"`
	JobsDone           int64 `json:"jobs_done"`
	JobsFailed         int64 `json:"jobs_failed"`
	JobsCanceled       int64 `json:"jobs_canceled"`
	JobsRunning        int64 `json:"jobs_running"`
	// IndexBuilds counts bitmap-index constructions across all datasets
	// ever registered (live and evicted); IndexCached is how many live
	// datasets currently hold a built index; IndexEvictions counts indexes
	// dropped by registry LRU eviction. Builds staying at one per dataset
	// hash while jobs repeat is the cached-index reuse guarantee.
	IndexBuilds        int64 `json:"index_builds"`
	IndexCached        int   `json:"index_cached"`
	IndexEvictions     int64 `json:"index_evictions"`
	QueueDepth         int   `json:"queue_depth"`
	QueueCapacity      int   `json:"queue_capacity"`
	MineExecutions     int64 `json:"mine_executions"`
	CacheHits          int64 `json:"cache_hits"`
	DedupHits          int64 `json:"dedup_hits"`
	ResultCacheEntries int   `json:"result_cache_entries"`
	// Store reports the persistence backend's durability counters and the
	// registry's cold-tier lifecycle. Omitted entirely when the server has
	// no store attached, keeping the no-persistence JSON byte-compatible.
	Store *StoreHealth `json:"store,omitempty"`
	// Active maps running job IDs to their live mining snapshots.
	Active map[string]metrics.Snapshot `json:"active,omitempty"`
}

// StoreHealth is the persistence slice of ServerMetrics: the store's WAL,
// checkpoint, recovery and corruption counters plus the registry's
// cold-tier demotion/promotion lifecycle.
type StoreHealth struct {
	WALAppends      uint64 `json:"store_wal_appends_total"`
	WALFsyncs       uint64 `json:"store_wal_fsyncs_total"`
	Checkpoints     uint64 `json:"store_checkpoints_total"`
	Recoveries      uint64 `json:"store_recoveries_total"`
	ColdLoads       uint64 `json:"store_cold_loads_total"`
	CorruptSegments uint64 `json:"store_corrupt_segments_total"`
	DatasetsOnDisk  int    `json:"store_datasets_on_disk"`
	ColdDatasets    int    `json:"cold_datasets"`
	Demotions       int64  `json:"cold_demotions_total"`
	Promotions      int64  `json:"cold_promotions_total"`
}

// Server ties the registry, job manager and result cache together behind
// the HTTP API. Build with New, mount Handler, stop with Close.
type Server struct {
	opts     Options
	log      *slog.Logger
	reg      *Registry
	cache    *resultCache
	mgr      *Manager
	counters *counters
	httpm    *obs.HTTPMetrics
	start    time.Time
	// ready gates /readyz: flipped false by StartDrain (and Close) so
	// load balancers stop routing before admissions actually stop.
	ready atomic.Bool
}

// New builds a serving stack.
func New(opts Options) *Server {
	opts.defaults()
	log := obs.Or(opts.Logger)
	c := &counters{}
	reg := NewRegistry(opts.RowBudget)
	reg.SetLogger(log.With("component", "serve.registry"))
	if opts.Store != nil {
		reg.SetStore(opts.Store)
	}
	cache := newResultCache(opts.CacheEntries)
	s := &Server{
		opts:     opts,
		log:      log,
		reg:      reg,
		cache:    cache,
		mgr:      newManager(reg, cache, opts.Workers, opts.QueueDepth, opts.DefaultTimeout, c, log),
		counters: c,
		httpm:    obs.NewHTTPMetrics(),
		start:    time.Now(),
	}
	s.ready.Store(true)
	return s
}

// Registry exposes the dataset registry (tests and preloading).
func (s *Server) Registry() *Registry { return s.reg }

// Manager exposes the job manager (tests and embedding).
func (s *Server) Manager() *Manager { return s.mgr }

// HTTPMetrics exposes the RED aggregate of the mounted handler.
func (s *Server) HTTPMetrics() *obs.HTTPMetrics { return s.httpm }

// JobPanics reports how many job executions panicked and were isolated
// into failed jobs.
func (s *Server) JobPanics() int64 { return s.counters.jobPanics.Load() }

// Ready reports whether the server should receive new traffic: true
// until StartDrain/Close, and only while the job manager still admits.
func (s *Server) Ready() bool {
	if !s.ready.Load() {
		return false
	}
	s.mgr.mu.Lock()
	closed := s.mgr.closed
	s.mgr.mu.Unlock()
	return !closed
}

// StartDrain flips readiness off without stopping work: /readyz turns
// 503 so load balancers stop routing, while /healthz stays green and
// in-flight (and even newly submitted) requests keep completing. Call it
// before Close, leaving the LB a propagation window. Idempotent.
func (s *Server) StartDrain() {
	if s.ready.CompareAndSwap(true, false) {
		s.log.Info("drain started: readiness gate closed", "component", "serve")
	}
}

// Close drains the server: readiness flips first, submissions stop,
// running jobs get the grace period, then their contexts are canceled;
// Close returns after every worker goroutine exited.
func (s *Server) Close(grace time.Duration) {
	s.StartDrain()
	s.mgr.Close(grace)
}

// Metrics snapshots the serve-level counters and the live mining
// snapshots of running jobs.
func (s *Server) Metrics() ServerMetrics {
	entries, rows, evictions := s.reg.Stats()
	ixCached, ixBuilds, ixEvictions := s.reg.IndexStats()
	m := ServerMetrics{
		UptimeNanos:        int64(time.Since(s.start)),
		DatasetsRegistered: entries,
		DatasetRows:        rows,
		DatasetEvictions:   evictions,
		IndexBuilds:        ixBuilds,
		IndexCached:        ixCached,
		IndexEvictions:     ixEvictions,
		JobsSubmitted:      s.counters.jobsSubmitted.Load(),
		JobsDone:           s.counters.jobsDone.Load(),
		JobsFailed:         s.counters.jobsFailed.Load(),
		JobsCanceled:       s.counters.jobsCanceled.Load(),
		JobsRunning:        s.counters.jobsRunning.Load(),
		QueueDepth:         s.mgr.QueueDepth(),
		QueueCapacity:      s.opts.QueueDepth,
		MineExecutions:     s.counters.mineExecutions.Load(),
		CacheHits:          s.counters.cacheHits.Load(),
		DedupHits:          s.counters.dedupHits.Load(),
		ResultCacheEntries: s.cache.len(),
	}
	if s.opts.Store != nil {
		h := s.opts.Store.Health()
		cold, demotions, promotions := s.reg.ColdStats()
		m.Store = &StoreHealth{
			WALAppends:      h.WALAppends,
			WALFsyncs:       h.WALFsyncs,
			Checkpoints:     h.Checkpoints,
			Recoveries:      h.Recoveries,
			ColdLoads:       h.ColdLoads,
			CorruptSegments: h.CorruptSegments,
			DatasetsOnDisk:  h.Datasets,
			ColdDatasets:    cold,
			Demotions:       demotions,
			Promotions:      promotions,
		}
	}
	for _, j := range s.mgr.Jobs() {
		if snap, ok := j.liveMetrics(); ok {
			if m.Active == nil {
				m.Active = make(map[string]metrics.Snapshot)
			}
			m.Active[j.ID] = snap
		}
	}
	return m
}
