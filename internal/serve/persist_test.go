package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdadcs/internal/obs"
	"sdadcs/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestRegistrySurvivesRestart is the tentpole's registry guarantee: a
// dataset registered against one store is addressable — same content
// hash, same listing, same parsed content — from a fresh registry opened
// over the same directory, without re-uploading anything.
func TestRegistrySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	csv := csvRows(12, "persist")

	st := openStore(t, dir)
	r := NewRegistry(0)
	r.SetStore(st)
	info, err := r.Register("mill", csv, "g", nil)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	d1, _, ok := r.Get(info.ID)
	if !ok {
		t.Fatal("Get after register")
	}
	st.Close()

	st2 := openStore(t, dir)
	r2 := NewRegistry(0)
	r2.SetStore(st2)
	list := r2.List()
	if len(list) != 1 || list[0].ID != info.ID || list[0].Name != "mill" || list[0].Rows != 12 {
		t.Fatalf("List after restart: %+v", list)
	}
	d2, info2, release, ok := r2.Acquire(info.ID)
	if !ok {
		t.Fatal("Acquire after restart")
	}
	defer release()
	if info2.ID != info.ID || d2.Rows() != d1.Rows() || d2.NumAttrs() != d1.NumAttrs() {
		t.Fatalf("rehydrated dataset differs: %+v", info2)
	}
	for r := 0; r < d1.Rows(); r++ {
		for a := 0; a < d1.NumAttrs(); a++ {
			if d1.Attr(a).Kind != d2.Attr(a).Kind {
				t.Fatalf("attr %d kind changed", a)
			}
		}
		if d1.Group(r) != d2.Group(r) {
			t.Fatalf("group row %d differs after restart", r)
		}
	}
	if _, _, promotions := r2.ColdStats(); promotions != 1 {
		t.Fatalf("promotions = %d, want 1", promotions)
	}
}

// TestEvictionDemotesToColdTier: with a store attached, LRU eviction
// becomes demotion — the entry stays listed and Acquire reloads it from
// disk, bumping the store's cold-load counter.
func TestEvictionDemotesToColdTier(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	r := NewRegistry(25) // room for two 10-row datasets, not three
	r.SetStore(st)

	a, _ := r.Register("a", csvRows(10, "a"), "g", nil)
	b, _ := r.Register("b", csvRows(10, "b"), "g", nil)
	c, _ := r.Register("c", csvRows(10, "c"), "g", nil) // demotes a

	cold, demotions, _ := r.ColdStats()
	if cold != 1 || demotions != 1 {
		t.Fatalf("cold=%d demotions=%d, want 1/1", cold, demotions)
	}
	if len(r.List()) != 3 {
		t.Fatalf("demotion dropped a listing: %+v", r.List())
	}
	if entries, rows, evictions := r.Stats(); entries != 3 || rows != 20 || evictions != 1 {
		t.Fatalf("Stats after demotion: %d entries %d rows %d evictions", entries, rows, evictions)
	}

	// Demand promotes it back — and demotes the new LRU victim (b).
	ds, _, release, ok := r.Acquire(a.ID)
	if !ok || ds == nil {
		t.Fatal("Acquire of demoted dataset failed")
	}
	release()
	if st.Health().ColdLoads != 1 {
		t.Fatalf("cold loads = %d, want 1", st.Health().ColdLoads)
	}
	cold, demotions, promotions := r.ColdStats()
	if cold != 1 || demotions != 2 || promotions != 1 {
		t.Fatalf("after promotion: cold=%d demotions=%d promotions=%d", cold, demotions, promotions)
	}
	if _, _, ok := r.Get(b.ID); !ok {
		t.Fatal("b not addressable after its demotion")
	}
	_ = c
}

// TestPinsBlockDemotion: a pinned (in-flight) dataset is never demoted,
// exactly as it was never evicted.
func TestPinsBlockDemotion(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	r := NewRegistry(25)
	r.SetStore(st)

	a, _ := r.Register("a", csvRows(10, "a"), "g", nil)
	_, _, release, ok := r.Acquire(a.ID)
	if !ok {
		t.Fatal("Acquire")
	}
	r.Register("b", csvRows(10, "b"), "g", nil)
	r.Register("c", csvRows(10, "c"), "g", nil) // would demote a, but it is pinned

	if ds, _, ok := r.Get(a.ID); !ok || ds == nil {
		t.Fatal("pinned dataset was demoted")
	}
	if cold, _, _ := r.ColdStats(); cold == 0 {
		t.Fatal("nothing was demoted at all — budget not enforced")
	}
	release()
}

// TestCorruptColdLoadIs404: a quarantined cold dataset disappears from
// the registry instead of wedging it — Acquire reports a stable miss.
func TestCorruptColdLoadIs404(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	r := NewRegistry(0)
	r.SetStore(st)
	info, err := r.Register("x", csvRows(10, "x"), "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt the segment on disk, then restart.
	seg := filepath.Join(dir, info.ID+".seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	r2 := NewRegistry(0)
	r2.SetStore(st2)
	if len(r2.List()) != 1 {
		t.Fatalf("List before load: %+v", r2.List())
	}
	if _, _, _, ok := r2.Acquire(info.ID); ok {
		t.Fatal("Acquire of corrupt dataset succeeded")
	}
	if _, _, _, ok := r2.Acquire(info.ID); ok {
		t.Fatal("second Acquire resurrected the corrupt dataset")
	}
	if len(r2.List()) != 0 {
		t.Fatalf("corrupt dataset still listed: %+v", r2.List())
	}
	if st2.Health().CorruptSegments != 1 {
		t.Fatalf("corrupt segments = %d", st2.Health().CorruptSegments)
	}
}

// TestServeRestartChoreography is the end-to-end restart story over the
// HTTP API: register, mine, shut down, restart on the same data dir —
// the dataset is listed without re-upload and an identical job submission
// produces a byte-identical /result payload.
func TestServeRestartChoreography(t *testing.T) {
	dir := t.TempDir()
	jobReq := func(ds string) map[string]any {
		return map[string]any{"dataset_id": ds, "config": map[string]any{"max_depth": 2}}
	}

	st := openStore(t, dir)
	_, c := newTestServer(t, Options{Workers: 2, Store: st})
	dsID := c.register(smallCSV)
	jst, code, body := c.submit(jobReq(dsID))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	c.waitState(jst.ID, JobDone, 20*time.Second)
	code, result1 := c.do("GET", "/v1/jobs/"+jst.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	st.Close() // server teardown happens via t.Cleanup later; store closes now

	st2 := openStore(t, dir)
	_, c2 := newTestServer(t, Options{Workers: 2, Store: st2})

	// The dataset survived the restart — listed without re-upload.
	code, listing := c2.do("GET", "/v1/datasets", nil)
	if code != http.StatusOK || !strings.Contains(string(listing), dsID) {
		t.Fatalf("dataset %s not listed after restart: %d %s", dsID, code, listing)
	}
	// Same job on the rehydrated dataset: byte-identical result.
	jst2, code, body := c2.submit(jobReq(dsID))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", code, body)
	}
	c2.waitState(jst2.ID, JobDone, 20*time.Second)
	code, result2 := c2.do("GET", "/v1/jobs/"+jst2.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result after restart: %d", code)
	}
	if string(result1) != string(result2) {
		t.Fatalf("results differ across restart:\n%s\nvs\n%s", result1, result2)
	}
}

// TestMetricsJSONByteCompatWithoutStore pins the compatibility guarantee:
// with no store attached, the /v1/metrics JSON must not grow a "store"
// key (the whole struct marshals exactly as before this feature).
func TestMetricsJSONByteCompatWithoutStore(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	code, body := c.do("GET", "/v1/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["store"]; ok {
		t.Fatalf("store key present without a store attached:\n%s", body)
	}
}

// TestStoreMetricsExposed: with a store attached, the store health series
// appear in both the JSON payload and a promlint-clean Prometheus
// exposition with HELP/TYPE headers.
func TestStoreMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	_, c := newTestServer(t, Options{Workers: 1, Store: st})
	c.register(smallCSV)

	m := c.metrics()
	if m.Store == nil {
		t.Fatal("JSON metrics missing store block")
	}
	if m.Store.WALAppends == 0 || m.Store.WALFsyncs == 0 || m.Store.DatasetsOnDisk != 1 {
		t.Fatalf("store health: %+v", m.Store)
	}

	code, page := c.do("GET", "/v1/metrics?format=prometheus", nil)
	if code != http.StatusOK {
		t.Fatalf("prometheus: %d", code)
	}
	if err := obs.LintExposition(page); err != nil {
		t.Fatalf("exposition fails strict parse: %v\n%s", err, page)
	}
	text := string(page)
	for _, want := range []string{
		"sdadcs_store_wal_appends_total",
		"sdadcs_store_wal_fsyncs_total",
		"sdadcs_store_checkpoints_total",
		"sdadcs_store_recoveries_total",
		"sdadcs_store_cold_loads_total",
		"sdadcs_store_corrupt_segments_total",
		"# HELP sdadcs_store_wal_appends_total",
		"# TYPE sdadcs_store_wal_appends_total counter",
		"sdadcs_store_datasets_on_disk 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Without a store, none of the sdadcs_store_* series exist.
	_, cNo := newTestServer(t, Options{Workers: 1})
	_, pageNo := cNo.do("GET", "/v1/metrics?format=prometheus", nil)
	if strings.Contains(string(pageNo), "sdadcs_store_") {
		t.Fatal("store series exposed without a store attached")
	}
}
