// Package stucco implements STUCCO-style categorical contrast set mining
// (Bay & Pazzani 2001), the foundation the paper builds on for itemsets
// with only categorical attributes (§3, §4.3):
//
//   - levelwise candidate generation over attribute=value items,
//   - a contrast is an itemset whose largest support difference exceeds δ
//     (Eq. 2) and whose group association is chi-square significant at the
//     Bonferroni-adjusted level (Eq. 3),
//   - pruning by minimum deviation size, expected cell count < 5, and the
//     chi-square optimistic-estimate bound.
//
// It also serves as the shared combination search run over pre-binned data
// for the entropy and MVD baselines: after global discretization each bin
// is just a categorical value.
//
// The search rides the same engine substrate as the core miner: support
// counting runs on the dataset-cached bitmap index by default (with the
// row-slice path selectable for paired benchmarks and the differential
// oracle's bit-equality battery), levels fan out over Workers goroutines
// with a deterministic merge, and the metrics recorder and trace ring
// receive the same per-level/per-rule instrumentation.
package stucco

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"sdadcs/internal/bitmap"
	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
	"sdadcs/internal/topk"
	"sdadcs/internal/trace"
)

// TopKUnbounded disables the top-k result bound: every admissible contrast
// is retained (the differential oracle mines with this sentinel).
const TopKUnbounded = -1

// Config controls a mining run.
type Config struct {
	// Alpha is the global significance level (default 0.05); it is
	// Bonferroni-adjusted per level during the search.
	Alpha float64
	// Delta is the minimum support difference for a large contrast and the
	// minimum support for the deviation-size pruning (default 0.1).
	Delta float64
	// MaxDepth bounds the itemset size (default 5, the paper's setting).
	MaxDepth int
	// TopK bounds the result list (default 100). TopKUnbounded (-1)
	// disables the bound entirely.
	TopK int
	// Measure scores contrasts for the top-k list (default SupportDiff).
	Measure pattern.Measure
	// Attrs restricts the search to these attribute indices; nil means all
	// categorical attributes.
	Attrs []int
	// Workers > 1 generates each level's children in parallel; results are
	// merged deterministically, so any worker count is bit-identical to the
	// serial search.
	Workers int
	// SliceCounting selects the row-index-slice counting path instead of
	// the shared bitmap index. Both engines produce identical results
	// (asserted by the golden-equality tests); the knob exists for paired
	// benchmarks and the oracle's engine-swap battery.
	SliceCounting bool
	// Metrics, when non-nil, receives per-level node counts and wall
	// times, per-rule prune hits and top-k threshold updates. nil disables
	// instrumentation at one pointer check per site.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives decision-level events: candidate
	// evaluations, per-rule prune firings with observed statistic and
	// bound, pattern emissions and top-k admissions.
	Trace *trace.Tracer
}

func (c *Config) defaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Delta == 0 {
		c.Delta = 0.1
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 5
	}
	if c.TopK == 0 {
		c.TopK = 100
	}
	if c.TopK == TopKUnbounded {
		c.TopK = 0 // topk.List treats k <= 0 as unbounded
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
}

// Result carries the mined contrasts and search statistics.
type Result struct {
	Contrasts []pattern.Contrast
	// Candidates is the number of candidate itemsets whose supports were
	// counted.
	Candidates int
	// Pruned is the number of candidates cut by any pruning rule before
	// their children were generated.
	Pruned int
}

// node is a surviving search-tree entry: an itemset, the rows it covers
// (as a bitmap intersection + popcount, as in SciCSM, or as a row-index
// slice on the slice path), and the highest attribute used (children only
// append later attributes, which enumerates each attribute set exactly
// once — the Figure 1 order).
type node struct {
	set      pattern.Itemset
	bits     *bitmap.Set // bitmap engine cover (nil on the slice path)
	rows     []int       // slice engine cover (nil on the bitmap path)
	supports pattern.Supports
	lastAttr int
}

// miner is the per-run state.
type miner struct {
	d         *dataset.Dataset
	cfg       Config
	idx       *bitmap.Index // nil on the slice path
	attrs     []int
	sizes     []int
	totalRows int
	list      *topk.List
	rec       *metrics.Recorder
	tr        *trace.Tracer
	res       Result
}

// Mine runs the levelwise search and returns the top contrasts sorted by
// descending score.
func Mine(d *dataset.Dataset, cfg Config) Result {
	res, _ := MineContext(context.Background(), d, cfg)
	return res
}

// MineContext is Mine with cancellation: the search checks ctx between
// levels and returns the contrasts found so far plus ctx.Err() when
// canceled.
func MineContext(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	cfg.defaults()
	attrs := cfg.Attrs
	if attrs == nil {
		attrs = d.CategoricalAttrs()
	}
	// δ bounds the support difference, not the score: purity-based
	// measures legitimately score large contrasts below δ.
	floor := cfg.Delta
	if cfg.Measure != pattern.SupportDiff {
		floor = 0
	}
	m := &miner{
		d:         d,
		cfg:       cfg,
		attrs:     attrs,
		sizes:     d.GroupSizes(),
		totalRows: d.Rows(),
		list:      topk.New(cfg.TopK, floor).WithRecorder(cfg.Metrics).WithTracer(cfg.Trace),
		rec:       cfg.Metrics,
		tr:        cfg.Trace,
	}
	root := node{set: pattern.NewItemset(), lastAttr: -1}
	if cfg.SliceCounting {
		root.rows = allRows(d)
	} else {
		// Ride the dataset-cached index: a STUCCO baseline run over a
		// dataset the levelwise miner already indexed (or vice versa) pays
		// no rebuild.
		var built bool
		m.idx, built = bitmap.Shared(d)
		if built {
			m.rec.BitmapBuilds(m.idx.NumBitmaps())
		} else {
			m.rec.BitmapIndexReuse()
		}
		root.bits = m.idx.All()
	}
	schedule := stats.NewBonferroniSchedule(cfg.Alpha)

	frontier := m.expandAll([]node{root})
	var err error
	for level := 1; level <= cfg.MaxDepth && len(frontier) > 0; level++ {
		if e := ctx.Err(); e != nil {
			err = e
			break
		}
		start := time.Now()
		alpha := schedule.LevelAlpha(len(frontier))
		survivors, emitted := m.evaluate(level, frontier, alpha)
		m.rec.LevelObserve(level, len(frontier), len(survivors), emitted, cfg.Workers, time.Since(start))
		if level == cfg.MaxDepth {
			break
		}
		frontier = m.expandAll(survivors)
	}
	m.res.Contrasts = m.list.Contrasts()
	return m.res, err
}

// evaluate tests every frontier candidate at the level's α: emit the large
// and significant ones, apply the pruning rules, and return the survivors
// whose children will be generated (plus the number of contrasts emitted).
func (m *miner) evaluate(level int, frontier []node, alpha float64) ([]node, int) {
	var survivors []node
	emitted := 0
	for _, nd := range frontier {
		m.res.Candidates++
		sup := nd.supports
		if m.tr.Enabled() {
			m.tr.Node(level, 0, nd.set.Key(), sup.TotalCount(), sup.Count)
		}

		// Record as a contrast when large and significant.
		test, err := stats.ChiSquare2xK(sup.Count, m.sizes)
		significant := err == nil && test.P < alpha && test.MinExpected >= 5
		if sup.MaxDiff() > m.cfg.Delta && significant {
			score := m.cfg.Measure.Eval(sup)
			if m.tr.Enabled() {
				m.tr.Emit(level, 0, nd.set.Key(), score, test.Statistic, test.P, sup.Count)
			}
			if m.list.Add(pattern.Contrast{
				Set:      nd.set,
				Supports: sup,
				Score:    score,
				ChiSq:    test.Statistic,
				P:        test.P,
			}) {
				emitted++
			}
		}

		// Pruning rules decide whether children are generated.
		if m.prune(level, nd, sup, alpha) {
			m.res.Pruned++
			continue
		}
		survivors = append(survivors, nd)
	}
	return survivors, emitted
}

// prune applies STUCCO's rules to a counted candidate; true means do not
// expand its children.
func (m *miner) prune(level int, nd node, sup pattern.Supports, alpha float64) bool {
	// Minimum deviation size: the itemset must have support over δ in at
	// least one group, or no specialization can be a large contrast.
	if !sup.LargeIn(m.cfg.Delta) {
		m.rec.PruneHit(metrics.PruneMinDeviation)
		if m.tr.Enabled() {
			m.tr.Prune(level, 0, nd.set.Key(), metrics.PruneMinDeviation.String(), sup.MaxDiff(), m.cfg.Delta)
		}
		return true
	}
	// Expected count: all statistical tests on specializations are invalid
	// (and treated as insignificant) when the expected cell count is below
	// 5 already.
	if exp := minExpected(sup, m.sizes, m.totalRows); exp < 5 {
		m.rec.PruneHit(metrics.PruneExpectedCount)
		if m.tr.Enabled() {
			m.tr.Prune(level, 0, nd.set.Key(), metrics.PruneExpectedCount.String(), exp, 5)
		}
		return true
	}
	// Chi-square upper bound: if even the most extreme specialization
	// cannot reach the critical value at the current level's α, no
	// descendant can be significant.
	bound := stats.ChiSquareOptimistic(sup.Count, m.sizes)
	crit := stats.ChiSquareQuantile(1-alpha, len(m.sizes)-1)
	if bound < crit {
		m.rec.PruneHit(metrics.PruneChiSquareOE)
		if m.tr.Enabled() {
			m.tr.Prune(level, 0, nd.set.Key(), metrics.PruneChiSquareOE.String(), bound, crit)
		}
		return true
	}
	return false
}

// minExpected returns the smallest expected cell count of the
// pattern/group contingency table.
func minExpected(sup pattern.Supports, sizes []int, totalRows int) float64 {
	covered := sup.TotalCount()
	min := 0.0
	for g, gs := range sizes {
		exp := float64(covered) * float64(gs) / float64(totalRows)
		if g == 0 || exp < min {
			min = exp
		}
	}
	return min
}

// expandAll generates the children of every surviving node, fanning the
// parents out over cfg.Workers goroutines. Children are collected per
// parent and concatenated in parent order, so the frontier is identical
// for any worker count.
func (m *miner) expandAll(parents []node) []node {
	if len(parents) == 0 {
		return nil
	}
	perParent := make([][]node, len(parents))
	workers := m.cfg.Workers
	if workers > len(parents) {
		workers = len(parents)
	}
	if workers <= 1 {
		for i := range parents {
			perParent[i] = m.children(parents[i])
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		next.Store(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(parents) {
						return
					}
					perParent[i] = m.children(parents[i])
				}
			}()
		}
		wg.Wait()
	}
	var out []node
	for _, kids := range perParent {
		out = append(out, kids...)
	}
	return out
}

// children extends one node with every value of every attribute strictly
// after its last attribute. On the bitmap path covers are bitmap
// intersections and supports are popcounts against the group masks; on the
// slice path covers are filtered row slices.
func (m *miner) children(nd node) []node {
	var out []node
	for _, attr := range m.attrs {
		if attr <= nd.lastAttr {
			continue
		}
		domain := m.d.Domain(attr)
		for code := range domain {
			var child node
			var counts []int
			total := 0
			if m.idx != nil {
				cover := nd.bits.And(m.idx.Value(attr, code))
				counts = m.idx.GroupCounts(cover)
				for _, c := range counts {
					total += c
				}
				child.bits = cover
			} else {
				var rows []int
				counts = make([]int, len(m.sizes))
				for _, r := range nd.rows {
					if m.d.CatCode(attr, r) == code {
						rows = append(rows, r)
						counts[m.d.Group(r)]++
						total++
					}
				}
				child.rows = rows
			}
			if total == 0 {
				continue
			}
			child.set = nd.set.With(pattern.CatItem(attr, code))
			child.supports = pattern.CountsToSupports(counts, m.sizes)
			child.lastAttr = attr
			out = append(out, child)
		}
	}
	return out
}

// allRows enumerates every row index (the slice path's root cover).
func allRows(d *dataset.Dataset) []int {
	rows := make([]int, d.Rows())
	for i := range rows {
		rows[i] = i
	}
	return rows
}
