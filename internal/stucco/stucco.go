// Package stucco implements STUCCO-style categorical contrast set mining
// (Bay & Pazzani 2001), the foundation the paper builds on for itemsets
// with only categorical attributes (§3, §4.3):
//
//   - levelwise candidate generation over attribute=value items,
//   - a contrast is an itemset whose largest support difference exceeds δ
//     (Eq. 2) and whose group association is chi-square significant at the
//     Bonferroni-adjusted level (Eq. 3),
//   - pruning by minimum deviation size, expected cell count < 5, and the
//     chi-square optimistic-estimate bound.
//
// It also serves as the shared combination search run over pre-binned data
// for the entropy and MVD baselines: after global discretization each bin
// is just a categorical value.
package stucco

import (
	"sdadcs/internal/bitmap"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
	"sdadcs/internal/topk"
)

// Config controls a mining run.
type Config struct {
	// Alpha is the global significance level (default 0.05); it is
	// Bonferroni-adjusted per level during the search.
	Alpha float64
	// Delta is the minimum support difference for a large contrast and the
	// minimum support for the deviation-size pruning (default 0.1).
	Delta float64
	// MaxDepth bounds the itemset size (default 5, the paper's setting).
	MaxDepth int
	// TopK bounds the result list (default 100). 0 keeps everything above
	// Delta.
	TopK int
	// Measure scores contrasts for the top-k list (default SupportDiff).
	Measure pattern.Measure
	// Attrs restricts the search to these attribute indices; nil means all
	// categorical attributes.
	Attrs []int
}

func (c *Config) defaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Delta == 0 {
		c.Delta = 0.1
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 5
	}
	if c.TopK == 0 {
		c.TopK = 100
	}
}

// Result carries the mined contrasts and search statistics.
type Result struct {
	Contrasts []pattern.Contrast
	// Candidates is the number of candidate itemsets whose supports were
	// counted.
	Candidates int
	// Pruned is the number of candidates cut by any pruning rule before
	// their children were generated.
	Pruned int
}

// node is a surviving search-tree entry: an itemset, the rows it covers
// (as a bitmap — candidate counting is bitmap intersection + popcount, as
// in SciCSM), and the highest attribute used (children only append later
// attributes, which enumerates each attribute set exactly once — the
// Figure 1 order).
type node struct {
	set      pattern.Itemset
	cover    *bitmap.Set
	supports pattern.Supports
	lastAttr int
}

// Mine runs the levelwise search and returns the top contrasts sorted by
// descending score.
func Mine(d *dataset.Dataset, cfg Config) Result {
	cfg.defaults()
	attrs := cfg.Attrs
	if attrs == nil {
		attrs = d.CategoricalAttrs()
	}
	sizes := d.GroupSizes()
	totalRows := d.Rows()
	// δ bounds the support difference, not the score: purity-based
	// measures legitimately score large contrasts below δ.
	floor := cfg.Delta
	if cfg.Measure != pattern.SupportDiff {
		floor = 0
	}
	list := topk.New(cfg.TopK, floor)
	schedule := stats.NewBonferroniSchedule(cfg.Alpha)
	res := Result{}
	// Ride the dataset-cached index: a STUCCO baseline run over a dataset
	// the levelwise miner already indexed (or vice versa) pays no rebuild.
	idx, _ := bitmap.Shared(d)

	// Level 1 candidates: every (attribute, value) item.
	frontier := expand(idx, d, []node{{set: pattern.NewItemset(), cover: idx.All(), lastAttr: -1}}, attrs)

	for level := 1; level <= cfg.MaxDepth && len(frontier) > 0; level++ {
		alpha := schedule.LevelAlpha(len(frontier))
		var survivors []node
		for _, nd := range frontier {
			res.Candidates++
			sup := nd.supports

			// Record as a contrast when large and significant.
			test, err := stats.ChiSquare2xK(sup.Count, sizes)
			significant := err == nil && test.P < alpha && test.MinExpected >= 5
			if sup.MaxDiff() > cfg.Delta && significant {
				list.Add(pattern.Contrast{
					Set:      nd.set,
					Supports: sup,
					Score:    cfg.Measure.Eval(sup),
					ChiSq:    test.Statistic,
					P:        test.P,
				})
			}

			// Pruning rules decide whether children are generated.
			if prune(nd, sup, cfg, alpha, sizes, totalRows) {
				res.Pruned++
				continue
			}
			survivors = append(survivors, nd)
		}
		if level == cfg.MaxDepth {
			break
		}
		frontier = expand(idx, d, survivors, attrs)
	}
	return Result{
		Contrasts:  list.Contrasts(),
		Candidates: res.Candidates,
		Pruned:     res.Pruned,
	}
}

// prune applies STUCCO's rules to a counted candidate; true means do not
// expand its children.
func prune(nd node, sup pattern.Supports, cfg Config, alpha float64, sizes []int, totalRows int) bool {
	// Minimum deviation size: the itemset must have support over δ in at
	// least one group, or no specialization can be a large contrast.
	if !sup.LargeIn(cfg.Delta) {
		return true
	}
	// Expected count: all statistical tests on specializations are invalid
	// (and treated as insignificant) when the expected cell count is below
	// 5 already.
	if expectedTooSmall(sup, sizes, totalRows) {
		return true
	}
	// Chi-square upper bound: if even the most extreme specialization
	// cannot reach the critical value at the current level's α, no
	// descendant can be significant.
	bound := stats.ChiSquareOptimistic(sup.Count, sizes)
	crit := stats.ChiSquareQuantile(1-alpha, len(sizes)-1)
	return bound < crit
}

// expectedTooSmall reports whether the smallest expected cell count of the
// pattern/group contingency table is below 5.
func expectedTooSmall(sup pattern.Supports, sizes []int, totalRows int) bool {
	covered := sup.TotalCount()
	for _, gs := range sizes {
		exp := float64(covered) * float64(gs) / float64(totalRows)
		if exp < 5 {
			return true
		}
	}
	return false
}

// expand generates the children of the surviving nodes: each node is
// extended with every value of every attribute strictly after its last
// attribute. Covers are bitmap intersections; supports are popcounts
// against the group masks.
func expand(idx *bitmap.Index, d *dataset.Dataset, nodes []node, attrs []int) []node {
	var out []node
	sizes := d.GroupSizes()
	for _, nd := range nodes {
		for _, attr := range attrs {
			if attr <= nd.lastAttr {
				continue
			}
			domain := d.Domain(attr)
			for code := range domain {
				item := pattern.CatItem(attr, code)
				cover := nd.cover.And(idx.Value(attr, code))
				counts := idx.GroupCounts(cover)
				total := 0
				for _, c := range counts {
					total += c
				}
				if total == 0 {
					continue
				}
				out = append(out, node{
					set:      nd.set.With(item),
					cover:    cover,
					supports: pattern.CountsToSupports(counts, sizes),
					lastAttr: attr,
				})
			}
		}
	}
	return out
}
