package stucco

import (
	"math/rand"
	"strconv"
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// skewed builds a categorical dataset where attribute 0 value "hot" is
// strongly associated with group X, attribute 1 is mildly associated, and
// attribute 2 is noise.
func skewed(seed int64, n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	a0 := make([]string, n)
	a1 := make([]string, n)
	a2 := make([]string, n)
	g := make([]string, n)
	for i := range g {
		x := i%2 == 0
		if x {
			g[i] = "X"
		} else {
			g[i] = "Y"
		}
		if x && rng.Float64() < 0.8 || !x && rng.Float64() < 0.2 {
			a0[i] = "hot"
		} else {
			a0[i] = "cold"
		}
		if x && rng.Float64() < 0.6 || !x && rng.Float64() < 0.4 {
			a1[i] = "m1"
		} else {
			a1[i] = "m2"
		}
		a2[i] = "n" + strconv.Itoa(rng.Intn(3))
	}
	return dataset.NewBuilder("skewed").
		AddCategorical("a0", a0).
		AddCategorical("a1", a1).
		AddCategorical("a2", a2).
		SetGroups(g).
		MustBuild()
}

func TestMineFindsPlantedContrast(t *testing.T) {
	d := skewed(1, 2000)
	res := Mine(d, Config{})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts found")
	}
	// The top contrast should involve a0 = hot or a0 = cold.
	top := res.Contrasts[0]
	it, ok := top.Set.ItemOn(0)
	if !ok {
		t.Fatalf("top contrast %s does not use a0", top.Set.Format(d))
	}
	if v := d.Domain(0)[it.Code]; v != "hot" && v != "cold" {
		t.Errorf("top contrast value = %q", v)
	}
	if top.Score < 0.5 {
		t.Errorf("top score = %v, want ~0.6", top.Score)
	}
}

func TestMineNoContrastOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1000
	a := make([]string, n)
	g := make([]string, n)
	for i := range a {
		a[i] = "v" + strconv.Itoa(rng.Intn(4))
		g[i] = "g" + strconv.Itoa(rng.Intn(2))
	}
	d := dataset.NewBuilder("noise").
		AddCategorical("a", a).
		SetGroups(g).
		MustBuild()
	res := Mine(d, Config{})
	if len(res.Contrasts) != 0 {
		t.Errorf("found %d contrasts on pure noise", len(res.Contrasts))
	}
}

func TestMineRespectsDepth(t *testing.T) {
	d := skewed(3, 2000)
	res := Mine(d, Config{MaxDepth: 1})
	for _, c := range res.Contrasts {
		if c.Set.Len() > 1 {
			t.Errorf("depth-1 run produced itemset of size %d", c.Set.Len())
		}
	}
	res2 := Mine(d, Config{MaxDepth: 2})
	if res2.Candidates <= res.Candidates {
		t.Error("deeper search should test more candidates")
	}
}

func TestMineTopK(t *testing.T) {
	d := skewed(4, 2000)
	res := Mine(d, Config{TopK: 3})
	if len(res.Contrasts) > 3 {
		t.Errorf("TopK=3 returned %d contrasts", len(res.Contrasts))
	}
	// Sorted by descending score.
	for i := 1; i < len(res.Contrasts); i++ {
		if res.Contrasts[i].Score > res.Contrasts[i-1].Score {
			t.Error("contrasts not sorted")
		}
	}
}

func TestMineAttrsSubset(t *testing.T) {
	d := skewed(5, 2000)
	res := Mine(d, Config{Attrs: []int{1, 2}})
	for _, c := range res.Contrasts {
		if _, uses := c.Set.ItemOn(0); uses {
			t.Error("restricted search used excluded attribute")
		}
	}
}

func TestMinePruningReducesWork(t *testing.T) {
	d := skewed(6, 2000)
	full := Mine(d, Config{MaxDepth: 3})
	if full.Pruned == 0 {
		t.Error("expected some pruning on this data")
	}
	if full.Candidates == 0 {
		t.Error("no candidates counted")
	}
}

func TestMineSupportsConsistency(t *testing.T) {
	// Every reported contrast's supports must match a direct recount.
	d := skewed(7, 1500)
	res := Mine(d, Config{})
	for _, c := range res.Contrasts {
		direct := pattern.SupportsOf(c.Set, d.All())
		for gi := range direct.Count {
			if direct.Count[gi] != c.Supports.Count[gi] {
				t.Errorf("%s: count[%d] = %d, direct %d",
					c.Set.Format(d), gi, c.Supports.Count[gi], direct.Count[gi])
			}
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	d := skewed(8, 1500)
	a := Mine(d, Config{})
	b := Mine(d, Config{})
	if len(a.Contrasts) != len(b.Contrasts) {
		t.Fatal("non-deterministic result count")
	}
	for i := range a.Contrasts {
		if a.Contrasts[i].Set.Key() != b.Contrasts[i].Set.Key() {
			t.Fatal("non-deterministic order")
		}
	}
}
