package entropy

import "testing"

// FuzzDiscretize checks that the MDLP splitter never panics and always
// returns strictly ordered cut points lying inside the value range.
func FuzzDiscretize(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, []byte{0, 0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{5, 5, 5, 5}, []byte{0, 1, 0, 1})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{9}, []byte{1})

	f.Fuzz(func(t *testing.T, rawValues, rawClasses []byte) {
		n := len(rawValues)
		if len(rawClasses) < n {
			n = len(rawClasses)
		}
		values := make([]float64, n)
		classes := make([]int, n)
		lo, hi := 256.0, -1.0
		for i := 0; i < n; i++ {
			values[i] = float64(rawValues[i])
			classes[i] = int(rawClasses[i]) % 3
			if values[i] < lo {
				lo = values[i]
			}
			if values[i] > hi {
				hi = values[i]
			}
		}
		cuts := Discretize(values, classes, 3)
		for i, c := range cuts {
			if i > 0 && c <= cuts[i-1] {
				t.Fatalf("cuts not strictly increasing: %v", cuts)
			}
			if n > 0 && (c < lo || c >= hi) {
				t.Fatalf("cut %v outside value range [%v, %v)", c, lo, hi)
			}
		}
	})
}
