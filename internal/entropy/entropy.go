// Package entropy implements the Fayyad & Irani (1993) multi-interval MDLP
// discretizer, one of the paper's baselines: each continuous attribute is
// split recursively at the class-entropy-minimizing boundary, and a split
// is kept only when its information gain beats the minimum-description-
// length criterion. The group attribute plays the role of the class, as in
// the paper's experimental setup.
//
// The discretizer is global and univariate — exactly the properties the
// paper contrasts SDAD-CS against: it "detects level 1 interactions and
// finds strong contrasts, but fails to find any interaction between the
// attributes when combined" (§5.5.1).
package entropy

import (
	"math"
	"sort"

	"sdadcs/internal/dataset"
)

// Discretize returns the MDLP cut points (ascending) for one attribute:
// values with parallel class labels in [0, numClasses). Missing (NaN)
// values are skipped.
func Discretize(values []float64, classes []int, numClasses int) []float64 {
	if len(values) != len(classes) || len(values) < 2 {
		return nil
	}
	idx := make([]int, 0, len(values))
	for i := range values {
		if values[i] == values[i] { // skip NaN
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return nil
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	sv := make([]float64, len(idx))
	sc := make([]int, len(idx))
	for i, j := range idx {
		sv[i] = values[j]
		sc[i] = classes[j]
	}
	var cuts []float64
	mdlpSplit(sv, sc, numClasses, &cuts)
	sort.Float64s(cuts)
	return cuts
}

// mdlpSplit recursively splits sorted values sv with classes sc.
func mdlpSplit(sv []float64, sc []int, numClasses int, cuts *[]float64) {
	n := len(sv)
	if n < 2 {
		return
	}
	total := classCounts(sc, numClasses)
	entS := entropyOf(total, n)
	if entS == 0 {
		return // already pure
	}

	// Scan boundary candidates with running prefix counts.
	prefix := make([]int, numClasses)
	bestGain := -1.0
	bestIdx := -1
	var bestLeftEnt, bestRightEnt float64
	var bestLeftK, bestRightK int
	for i := 0; i < n-1; i++ {
		prefix[sc[i]]++
		if sv[i] == sv[i+1] {
			continue // can only cut between distinct values
		}
		nl := i + 1
		nr := n - nl
		entL := entropyOf(prefix, nl)
		right := make([]int, numClasses)
		for c := range right {
			right[c] = total[c] - prefix[c]
		}
		entR := entropyOf(right, nr)
		e := float64(nl)/float64(n)*entL + float64(nr)/float64(n)*entR
		gain := entS - e
		if gain > bestGain {
			bestGain = gain
			bestIdx = i
			bestLeftEnt, bestRightEnt = entL, entR
			bestLeftK, bestRightK = distinct(prefix), distinct(right)
		}
	}
	if bestIdx == -1 {
		return // all values identical
	}

	// MDL acceptance criterion (Fayyad & Irani 1993, Eq. 8–9).
	k := distinct(total)
	delta := math.Log2(math.Pow(3, float64(k))-2) -
		(float64(k)*entS - float64(bestLeftK)*bestLeftEnt - float64(bestRightK)*bestRightEnt)
	threshold := (math.Log2(float64(n)-1) + delta) / float64(n)
	if bestGain <= threshold {
		return
	}

	cut := (sv[bestIdx] + sv[bestIdx+1]) / 2
	*cuts = append(*cuts, cut)
	mdlpSplit(sv[:bestIdx+1], sc[:bestIdx+1], numClasses, cuts)
	mdlpSplit(sv[bestIdx+1:], sc[bestIdx+1:], numClasses, cuts)
}

func classCounts(classes []int, numClasses int) []int {
	counts := make([]int, numClasses)
	for _, c := range classes {
		counts[c]++
	}
	return counts
}

func distinct(counts []int) int {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	return k
}

// entropyOf computes the Shannon entropy (bits) of a count vector with
// total n.
func entropyOf(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		e -= p * math.Log2(p)
	}
	return e
}

// DiscretizeDataset runs MDLP on every continuous attribute of d, using the
// group attribute as the class, and returns the cut points per attribute
// index.
func DiscretizeDataset(d *dataset.Dataset) map[int][]float64 {
	classes := make([]int, d.Rows())
	for r := range classes {
		classes[r] = d.Group(r)
	}
	cuts := make(map[int][]float64)
	for _, attr := range d.ContinuousAttrs() {
		cuts[attr] = Discretize(d.ContColumn(attr), classes, d.NumGroups())
	}
	return cuts
}
