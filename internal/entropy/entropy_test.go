package entropy

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/stucco"
)

func TestDiscretizeCleanBoundary(t *testing.T) {
	// Class 0 below 10, class 1 above: one cut near 10.
	var values []float64
	var classes []int
	for i := 0; i < 100; i++ {
		values = append(values, float64(i)/10)
		classes = append(classes, 0)
		values = append(values, 10+float64(i)/10)
		classes = append(classes, 1)
	}
	cuts := Discretize(values, classes, 2)
	if len(cuts) != 1 {
		t.Fatalf("cuts = %v, want exactly one", cuts)
	}
	if cuts[0] < 9.9 || cuts[0] > 10.05 {
		t.Errorf("cut = %v, want ~10", cuts[0])
	}
}

func TestDiscretizeNoSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 500)
	classes := make([]int, 500)
	for i := range values {
		values[i] = rng.Float64()
		classes[i] = rng.Intn(2)
	}
	cuts := Discretize(values, classes, 2)
	if len(cuts) != 0 {
		t.Errorf("cuts on noise = %v, want none (MDL criterion)", cuts)
	}
}

func TestDiscretizeMultiInterval(t *testing.T) {
	// Three class bands need two cuts.
	var values []float64
	var classes []int
	for i := 0; i < 200; i++ {
		values = append(values, float64(i%100))
		classes = append(classes, 0)
		values = append(values, 100+float64(i%100))
		classes = append(classes, 1)
		values = append(values, 200+float64(i%100))
		classes = append(classes, 0)
	}
	cuts := Discretize(values, classes, 2)
	if len(cuts) != 2 {
		t.Fatalf("cuts = %v, want two", cuts)
	}
	sort.Float64s(cuts)
	if math.Abs(cuts[0]-100) > 2 || math.Abs(cuts[1]-200) > 2 {
		t.Errorf("cuts = %v, want ~100 and ~200", cuts)
	}
}

func TestDiscretizeEdgeCases(t *testing.T) {
	if got := Discretize(nil, nil, 2); got != nil {
		t.Error("nil input should give nil cuts")
	}
	if got := Discretize([]float64{1}, []int{0}, 2); got != nil {
		t.Error("single value should give nil cuts")
	}
	// All values identical: no possible cut.
	if got := Discretize([]float64{2, 2, 2, 2}, []int{0, 1, 0, 1}, 2); len(got) != 0 {
		t.Errorf("identical values: cuts = %v", got)
	}
	// Pure class: no cut needed.
	if got := Discretize([]float64{1, 2, 3, 4}, []int{0, 0, 0, 0}, 2); len(got) != 0 {
		t.Errorf("pure class: cuts = %v", got)
	}
	// Mismatched lengths.
	if got := Discretize([]float64{1, 2}, []int{0}, 2); got != nil {
		t.Error("mismatched lengths should give nil")
	}
}

func TestDiscretizeDatasetAndMine(t *testing.T) {
	d := datagen.Simulated1(3, 2000)
	cuts := DiscretizeDataset(d)
	// Attribute 1 carries the class boundary at 0.5.
	a1 := d.AttrIndex("Attribute1")
	if len(cuts[a1]) == 0 {
		t.Fatal("no cut found on the separating attribute")
	}
	found := false
	for _, c := range cuts[a1] {
		if math.Abs(c-0.5) < 0.05 {
			found = true
		}
	}
	if !found {
		t.Errorf("cuts on Attribute1 = %v, want one near 0.5", cuts[a1])
	}

	res := stucco.Mine(dataset.Discretized(d, cuts), stucco.Config{})
	if len(res.Contrasts) == 0 {
		t.Fatal("entropy baseline found no contrasts on separable data")
	}
	if res.Contrasts[0].Score < 0.9 {
		t.Errorf("top score = %v, want ~1 (perfect separation)", res.Contrasts[0].Score)
	}
	if res.Candidates == 0 {
		t.Error("candidate counter not wired up")
	}
}

func TestEntropyMissesXOR(t *testing.T) {
	// The property the paper highlights: a univariate entropy discretizer
	// finds nothing on the X-shaped data (Figure 3b — "the entropy based
	// method does not find any bins for this dataset").
	d := datagen.Simulated2(4, 2000)
	cuts := DiscretizeDataset(d)
	total := 0
	for _, c := range cuts {
		total += len(c)
	}
	if total != 0 {
		t.Errorf("entropy found %d cuts on XOR data, expected none", total)
	}
}
