package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// sampleTracer builds a tracer with one event of every emitter shape.
func sampleTracer() *Tracer {
	tr := New(64)
	tr.SDAD(tr.Now(), 0, "", 100, 2*time.Millisecond)
	tr.Node(1, 0, "0=1", 30, []int{10, 20})
	tr.Prune(2, 1, "0=1|1=2", "lookup_table:0=1", 0, 0)
	tr.Split(1, 0, "2@0,8p-1", "width", 3.25, math.Inf(-1), 4) // open lower bound
	tr.Space(2, 0, "2@0,13p-2", 17, []int{9, 8})
	tr.Merge(0, "2@0,13p-2", "merged", 0.72, 0.31)
	tr.Emit(2, 1, "0=1|1=2", 0.4, 12.5, 0.0004, []int{25, 5})
	tr.TopK("0=1|1=2", "admitted", 0.1, 0.2)
	tr.Filter("0=1|1=2", "kept", 0.4)
	tr.Level(tr.Now(), 1, 12, 7, 3*time.Millisecond)
	tr.Remine(tr.Now(), 2000, 9, 5*time.Millisecond)
	return tr
}

func TestJSONLRoundTrip(t *testing.T) {
	snap := sampleTracer().Snapshot()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(snap.Events) {
		t.Errorf("wrote %d lines, want %d", got, len(snap.Events))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(snap.Events) {
		t.Fatalf("decoded %d events, want %d", len(back.Events), len(snap.Events))
	}
	for i := range snap.Events {
		if snap.Events[i] != back.Events[i] {
			t.Errorf("event %d drifted:\n  out: %+v\n  in:  %+v",
				i, snap.Events[i], back.Events[i])
		}
	}
	if back.Emitted != uint64(len(back.Events)) {
		t.Errorf("Emitted = %d, want %d", back.Emitted, len(back.Events))
	}
}

// TestJSONLDeterministicBytes pins the field order: two encodes of the
// same trace are byte-identical (the property golden files depend on).
func TestJSONLDeterministicBytes(t *testing.T) {
	snap := sampleTracer().Snapshot()
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("equal traces marshaled to different bytes")
	}
	first := a.Bytes()[:bytes.IndexByte(a.Bytes(), '\n')]
	if !bytes.HasPrefix(first, []byte(`{"seq":`)) {
		t.Errorf("field order changed: first line %s", first)
	}
}

// TestReadJSONLConcatenatedSegments mirrors cmd/monitor's per-window
// drain: several WriteJSONL outputs appended to one file decode as one
// event stream.
func TestReadJSONLConcatenatedSegments(t *testing.T) {
	tr := New(8)
	var buf bytes.Buffer
	tr.Filter("a", "kept", 1)
	if err := WriteJSONL(&buf, tr.Drain()); err != nil {
		t.Fatal(err)
	}
	tr.Filter("b", "redundant", 2)
	tr.Filter("c", "kept", 3)
	if err := WriteJSONL(&buf, tr.Drain()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(back.Events))
	}
	if back.Events[0].Key != "a" || back.Events[2].Key != "c" {
		t.Errorf("segment order broken: %+v", back.Events)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON must error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"seq":1,"ts_ns":0,"kind":"nope"}` + "\n")); err == nil {
		t.Error("unknown kind must error")
	}
	long := `{"seq":1,"ts_ns":0,"kind":"node","counts":[1,2,3,4,5,6,7,8,9]}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(long)); err == nil {
		t.Error("oversized counts must error")
	}
}

func TestWriteChromeValidFormat(t *testing.T) {
	snap := sampleTracer().Snapshot()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("Chrome export is not a JSON array: %v", err)
	}
	// 2 metadata events + one entry per trace event.
	if len(events) != len(snap.Events)+2 {
		t.Fatalf("got %d chrome events, want %d", len(events), len(snap.Events)+2)
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "process_name" {
		t.Errorf("missing process_name metadata: %v", events[0])
	}
	if events[1]["ph"] != "M" || events[1]["name"] != "thread_name" {
		t.Errorf("missing thread_name metadata: %v", events[1])
	}
	spans, instants := 0, 0
	for _, e := range events[2:] {
		for _, f := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[f]; !ok {
				t.Fatalf("chrome event missing %q: %v", f, e)
			}
		}
		switch e["ph"] {
		case "X":
			spans++
			if d, ok := e["dur"].(float64); !ok || d <= 0 {
				t.Errorf("span without positive dur: %v", e)
			}
		case "i":
			instants++
			if e["s"] != "t" {
				t.Errorf("instant without thread scope: %v", e)
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	// sampleTracer emits 3 span kinds (sdad, level, remine); the rest are
	// instants.
	if spans != 3 || instants != len(snap.Events)-3 {
		t.Errorf("got %d spans, %d instants; want 3, %d", spans, instants, len(snap.Events)-3)
	}
}

// TestChromeWorkerBecomesTID pins the pid/tid mapping: every event lands
// in pid 1 with tid = worker index.
func TestChromeWorkerBecomesTID(t *testing.T) {
	tr := New(8)
	tr.Node(1, 3, "k", 5, nil)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	e := events[len(events)-1]
	if e["pid"] != float64(chromePID) || e["tid"] != float64(3) {
		t.Errorf("pid/tid = %v/%v, want %d/3", e["pid"], e["tid"], chromePID)
	}
}
