package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// wireFloat is a float64 that survives JSON encoding of non-finite
// values: continuous-range decisions legitimately carry ±Inf bounds
// (open intervals), which encoding/json rejects, so they go on the wire
// as the strings "inf", "-inf" and "nan".
type wireFloat float64

// MarshalJSON encodes non-finite values as strings.
func (f wireFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(v):
		return []byte(`"nan"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON inverts MarshalJSON.
func (f *wireFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "inf":
			*f = wireFloat(math.Inf(1))
		case "-inf":
			*f = wireFloat(math.Inf(-1))
		case "nan":
			*f = wireFloat(math.NaN())
		default:
			return fmt.Errorf("trace: bad float value %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = wireFloat(v)
	return nil
}

// wireEvent is the JSONL schema: field order here is the field order on
// the wire (encoding/json emits struct fields in declaration order, so
// equal events marshal to identical bytes).
type wireEvent struct {
	Seq    uint64    `json:"seq"`
	TS     int64     `json:"ts_ns"`
	Kind   string    `json:"kind"`
	Level  int32     `json:"level,omitempty"`
	Worker int32     `json:"worker,omitempty"`
	Key    string    `json:"key,omitempty"`
	Arg    string    `json:"arg,omitempty"`
	V1     wireFloat `json:"v1,omitempty"`
	V2     wireFloat `json:"v2,omitempty"`
	V3     wireFloat `json:"v3,omitempty"`
	Counts []int32   `json:"counts,omitempty"`
}

func toWire(e *Event) wireEvent {
	w := wireEvent{
		Seq:    e.Seq,
		TS:     e.TS,
		Kind:   e.Kind.String(),
		Level:  e.Level,
		Worker: e.Worker,
		Key:    e.Key,
		Arg:    e.Arg,
		V1:     wireFloat(e.V1),
		V2:     wireFloat(e.V2),
		V3:     wireFloat(e.V3),
	}
	if e.NG > 0 {
		w.Counts = make([]int32, e.NG)
		copy(w.Counts, e.Counts[:e.NG])
	}
	return w
}

func fromWire(w *wireEvent) (Event, error) {
	k, ok := kindFromString(w.Kind)
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown event kind %q", w.Kind)
	}
	e := Event{
		Seq:    w.Seq,
		TS:     w.TS,
		Kind:   k,
		Level:  w.Level,
		Worker: w.Worker,
		Key:    w.Key,
		Arg:    w.Arg,
		V1:     float64(w.V1),
		V2:     float64(w.V2),
		V3:     float64(w.V3),
	}
	if len(w.Counts) > MaxGroups {
		return Event{}, fmt.Errorf("trace: event %d carries %d group counts (max %d)",
			w.Seq, len(w.Counts), MaxGroups)
	}
	copy(e.Counts[:], w.Counts)
	e.NG = uint8(len(w.Counts))
	return e, nil
}

// WriteJSONL writes the trace as one JSON object per line, events in
// sequence order with a fixed field order, preceded by nothing and
// followed by nothing — the append-friendly format cmd/monitor uses for
// per-window segments. Equal traces marshal to identical bytes.
func WriteJSONL(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range tr.Events {
		if err := enc.Encode(toWire(&tr.Events[i])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL stream produced by WriteJSONL (possibly the
// concatenation of several segments). Volume counters are not part of the
// wire format; the returned trace carries the decoded events only.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	tr := &Trace{}
	for {
		var w wireEvent
		if err := dec.Decode(&w); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding JSONL event %d: %w", len(tr.Events), err)
		}
		e, err := fromWire(&w)
		if err != nil {
			return nil, err
		}
		tr.Events = append(tr.Events, e)
	}
	tr.Emitted = uint64(len(tr.Events))
	return tr, nil
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// Format"): https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// chromePID is the single logical process all events map to; tids are
// worker IDs (tid 0 = the coordinating goroutine).
const chromePID = 1

// WriteChrome writes the trace in the Chrome trace-event format: a JSON
// array of ph/ts/pid/tid events loadable in Perfetto or chrome://tracing.
// Span kinds (level, sdad, remine) become complete ("X") events with
// durations; everything else becomes thread-scoped instant ("i") events.
// tid maps to the per-level worker goroutine index.
func WriteChrome(w io.Writer, tr *Trace) error {
	out := make([]chromeEvent, 0, len(tr.Events)+2)
	out = append(out,
		chromeEvent{Name: "process_name", Phase: "M", PID: chromePID,
			Args: map[string]any{"name": "sdadcs miner"}},
		chromeEvent{Name: "thread_name", Phase: "M", PID: chromePID, TID: 0,
			Args: map[string]any{"name": "coordinator"}},
	)
	for i := range tr.Events {
		out = append(out, toChrome(&tr.Events[i]))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func toChrome(e *Event) chromeEvent {
	ce := chromeEvent{
		TS:  float64(e.TS) / 1e3, // ns → µs
		PID: chromePID,
		TID: int(e.Worker),
		Args: map[string]any{
			"seq": e.Seq,
		},
	}
	if e.Key != "" {
		ce.Args["key"] = e.Key
	}
	if e.Arg != "" {
		ce.Args["arg"] = e.Arg
	}
	if e.NG > 0 {
		ce.Args["counts"] = e.Counts[:e.NG]
	}
	switch e.Kind {
	case KindLevel:
		ce.Name = "level " + strconv.Itoa(int(e.Level))
		ce.Phase = "X"
		ce.Dur = e.V3 / 1e3
		ce.Args["frontier"] = e.V1
		ce.Args["survivors"] = e.V2
	case KindSDAD:
		ce.Name = "sdad-cs"
		ce.Phase = "X"
		ce.Dur = e.V3 / 1e3
		ce.Args["rows"] = e.V1
	case KindRemine:
		ce.Name = "remine"
		ce.Phase = "X"
		ce.Dur = e.V3 / 1e3
		ce.Args["rows"] = e.V1
		ce.Args["patterns"] = e.V2
	default:
		ce.Name = e.Kind.String()
		if e.Arg != "" {
			ce.Name += " " + e.Arg
		}
		ce.Phase = "i"
		ce.Scope = "t"
		if e.Level != 0 {
			ce.Args["level"] = e.Level
		}
		// wireFloat keeps ±Inf range bounds encodable.
		ce.Args["v1"] = wireFloat(e.V1)
		ce.Args["v2"] = wireFloat(e.V2)
		ce.Args["v3"] = wireFloat(e.V3)
	}
	return ce
}
