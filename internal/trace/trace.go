// Package trace is the decision-level observability layer of the mining
// pipeline: where internal/metrics answers "how much work did the miner
// do", trace answers "why was this particular pattern emitted, pruned,
// merged or filtered" — the provenance question the paper's §4.3 pruning
// rules and §5 meaningfulness filters raise for every pattern a
// practitioner expected but does not see.
//
// The central type is Tracer, an event emitter with the same discipline as
// metrics.Recorder: a nil *Tracer is a valid, disabled tracer whose
// methods return after one pointer check and allocate nothing (see
// TestDisabledTracerAllocs). Hot call sites additionally guard payload
// construction with Enabled(), so the disabled path never formats a key
// or copies a support slice.
//
// Events land in a fixed-capacity, lock-free buffer: emitters claim a slot
// with one atomic fetch-add and publish with one atomic store, so tracing
// never blocks the miner and is safe from any number of worker goroutines.
// When the buffer is full, new events are dropped and counted — the
// discard policy standard trace recorders use under overload — which also
// preserves the *early* decisions of a run, exactly the ones pattern
// provenance needs.
//
// Snapshots export two ways: JSONL (one event per line, fixed field
// order — see WriteJSONL) and the Chrome trace-event format (WriteChrome;
// loads in Perfetto or chrome://tracing, with level/SDAD-CS spans and
// worker IDs mapped to tids). NewIndex builds the per-pattern provenance
// index that powers the `cmd/contrast -explain` query path.
package trace

import (
	"sync/atomic"
	"time"
)

// Kind enumerates traced decision points. The names (see String) are the
// stable identifiers used by the JSONL export and the explain renderer.
type Kind uint8

// Traced decision kinds. The V1/V2/V3 payload slots are kind-specific;
// the table below is the authoritative schema (mirrored in README.md).
const (
	// KindLevel spans one levelwise search level. V1 = frontier size,
	// V2 = survivors, V3 = wall nanoseconds. TS is the level's start.
	KindLevel Kind = iota
	// KindNode records one frontier node evaluation: Key = itemset,
	// Level, Worker, Counts = per-group supports, V1 = covered rows.
	KindNode
	// KindPrune records one negative decision about a pattern: Key =
	// itemset, Arg = rule name (the metrics.PruneRule strings, optionally
	// suffixed ":<subset key>" for provenance-carrying rules, plus the
	// terminal decision labels "not_large" / "not_significant" /
	// "superseded_by_children"), V1 = observed statistic, V2 = the bound
	// it was compared against.
	KindPrune
	// KindSDAD spans one SDAD-CS (Algorithm 1) invocation: Key = the
	// categorical context, V1 = cover rows, V3 = wall nanoseconds.
	// TS is the call's start.
	KindSDAD
	// KindSplit records one median split decision: Key = parent box,
	// Arg = attribute name, Level = recursion depth, V1 = median,
	// V2/V3 = the box's (Lo, Hi] bounds on that attribute.
	KindSplit
	// KindSpace records one SDAD-CS partition box evaluation:
	// Key = box itemset, Level = recursion depth, Counts = per-group
	// supports, V1 = rows in the box.
	KindSpace
	// KindMerge records one bottom-up merge decision between contiguous
	// spaces: Key = the union box, Arg = verdict ("merged",
	// "reject_similarity", "reject_largeness", "reject_significance"),
	// V1 = the similarity chi-square p-value, V2 = the merged support
	// difference (when computed).
	KindMerge
	// KindEmit records a contrast entering the candidate stream:
	// Key = itemset, V1 = score, V2 = chi-square statistic, V3 = p-value,
	// Counts = per-group supports.
	KindEmit
	// KindTopK records top-k list dynamics: Key = the affected itemset,
	// Arg = "admitted" | "evicted" | "rejected" | "replaced",
	// V1 = threshold before, V2 = threshold after (or the score that
	// failed admission, for "rejected").
	KindTopK
	// KindFilter records the final meaningfulness verdict: Key = itemset,
	// Arg = "kept" | "redundant" | "unproductive" | "dependent:<superset
	// key>", V1 = score.
	KindFilter
	// KindRemine spans one stream-monitor window re-mine: V1 = window
	// rows, V2 = patterns in the new snapshot, V3 = wall nanoseconds.
	// TS is the re-mine's start.
	KindRemine

	numKinds
)

// String names the kind (stable identifiers used by the JSONL schema).
func (k Kind) String() string {
	switch k {
	case KindLevel:
		return "level"
	case KindNode:
		return "node"
	case KindPrune:
		return "prune"
	case KindSDAD:
		return "sdad"
	case KindSplit:
		return "split"
	case KindSpace:
		return "space"
	case KindMerge:
		return "merge"
	case KindEmit:
		return "emit"
	case KindTopK:
		return "topk"
	case KindFilter:
		return "filter"
	case KindRemine:
		return "remine"
	default:
		return "unknown"
	}
}

// kindFromString inverts String; ok is false for unknown names.
func kindFromString(s string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// MaxGroups bounds the per-group support counts carried inline by an
// event. Contrast mining compares a handful of groups (the paper's
// datasets have 2–6); deeper group structures truncate rather than
// allocate per event.
const MaxGroups = 8

// Event is one traced decision. Events are fixed-size values so the
// buffer never allocates per emission; kind-specific payload semantics
// are documented on the Kind constants.
type Event struct {
	// Seq is the emission ticket: a dense, per-tracer sequence number
	// that orders events totally (assignment order, not publish order).
	Seq uint64
	// TS is nanoseconds since the tracer's epoch. Span kinds (level,
	// sdad, remine) stamp their *start*; instant kinds stamp emission.
	TS int64
	// Kind is the decision point.
	Kind Kind
	// Level is the levelwise search level or SDAD-CS recursion depth.
	Level int32
	// Worker is the per-level worker goroutine index (0 when mining
	// single-threaded); it becomes the tid in the Chrome export.
	Worker int32
	// Key is the canonical itemset key of the pattern the decision is
	// about ("" for pattern-free events); pattern.ParseKey recovers the
	// itemset.
	Key string
	// Arg is the kind-specific label: prune rule, merge/top-k/filter
	// verdict, split attribute name.
	Arg string
	// V1, V2, V3 are kind-specific numeric payloads.
	V1, V2, V3 float64
	// Counts holds the first NG per-group support counts.
	Counts [MaxGroups]int32
	// NG is the number of valid entries in Counts.
	NG uint8
}

// GroupCounts returns the event's per-group supports as a slice (nil when
// the event carries none).
func (e *Event) GroupCounts() []int {
	if e.NG == 0 {
		return nil
	}
	out := make([]int, e.NG)
	for i := 0; i < int(e.NG); i++ {
		out[i] = int(e.Counts[i])
	}
	return out
}

// DefaultCapacity is the event-buffer size New uses when given 0:
// 1<<16 events (~6 MiB) holds the complete decision record of the paper's
// experimental runs with room to spare.
const DefaultCapacity = 1 << 16

// Tracer is the concurrency-safe decision-event sink. A nil *Tracer is
// the disabled tracer: every method returns after one pointer check.
// Construct with New.
type Tracer struct {
	epoch time.Time
	slots []Event
	// ready[i] flips 0→1 when slots[i] is fully written; Snapshot only
	// reads published slots, so a snapshot taken while emitters are
	// still running never observes a torn event.
	ready []atomic.Uint32
	// next is the ticket counter; tickets >= len(slots) are drops.
	next atomic.Uint64
	// emitted/dropped are cumulative across Drain calls.
	emitted atomic.Uint64
	dropped atomic.Uint64
	// highWater is the maximum buffer fill observed across Drain cycles.
	highWater atomic.Uint64
}

// New returns an enabled tracer with the given event capacity
// (0 = DefaultCapacity).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		epoch: time.Now(),
		slots: make([]Event, capacity),
		ready: make([]atomic.Uint32, capacity),
	}
}

// Enabled reports whether the tracer records anything; hot call sites use
// it to skip payload construction (key formatting, count copies) on the
// disabled path.
func (t *Tracer) Enabled() bool { return t != nil }

// Capacity returns the event-buffer size (0 for a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Now returns the nanoseconds-since-epoch timestamp span emitters capture
// at their start. A nil tracer returns 0.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// emitAt claims a ticket and publishes the event with the given
// timestamp. Full buffer → drop + count, never block.
func (t *Tracer) emitAt(ts int64, ev Event) {
	ticket := t.next.Add(1) - 1
	t.emitted.Add(1)
	if ticket >= uint64(len(t.slots)) {
		t.dropped.Add(1)
		return
	}
	ev.Seq = ticket
	ev.TS = ts
	t.slots[ticket] = ev
	t.ready[ticket].Store(1) // publish (atomic store orders the slot write)
}

func (t *Tracer) emit(ev Event) { t.emitAt(int64(time.Since(t.epoch)), ev) }

// putCounts copies up to MaxGroups group counts into the event.
func putCounts(ev *Event, counts []int) {
	n := len(counts)
	if n > MaxGroups {
		n = MaxGroups
	}
	for i := 0; i < n; i++ {
		ev.Counts[i] = int32(counts[i])
	}
	ev.NG = uint8(n)
}

// Level records one completed levelwise search level as a span starting
// at startTS (a Tracer.Now value captured before the level ran).
func (t *Tracer) Level(startTS int64, level, frontier, survivors int, wall time.Duration) {
	if t == nil {
		return
	}
	t.emitAt(startTS, Event{
		Kind:  KindLevel,
		Level: int32(level),
		V1:    float64(frontier),
		V2:    float64(survivors),
		V3:    float64(wall),
	})
}

// Node records one frontier-node evaluation.
func (t *Tracer) Node(level, worker int, key string, rows int, counts []int) {
	if t == nil {
		return
	}
	ev := Event{Kind: KindNode, Level: int32(level), Worker: int32(worker), Key: key, V1: float64(rows)}
	putCounts(&ev, counts)
	t.emit(ev)
}

// Prune records one pruning-rule firing with the observed statistic and
// the bound it lost against.
func (t *Tracer) Prune(level, worker int, key, rule string, observed, bound float64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindPrune, Level: int32(level), Worker: int32(worker),
		Key: key, Arg: rule, V1: observed, V2: bound})
}

// SDAD records one SDAD-CS invocation as a span starting at startTS.
func (t *Tracer) SDAD(startTS int64, worker int, key string, rows int, wall time.Duration) {
	if t == nil {
		return
	}
	t.emitAt(startTS, Event{Kind: KindSDAD, Worker: int32(worker), Key: key,
		V1: float64(rows), V3: float64(wall)})
}

// Split records one median-split decision within a box.
func (t *Tracer) Split(level, worker int, key, attr string, median, lo, hi float64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindSplit, Level: int32(level), Worker: int32(worker),
		Key: key, Arg: attr, V1: median, V2: lo, V3: hi})
}

// Space records one SDAD-CS partition-box evaluation.
func (t *Tracer) Space(level, worker int, key string, rows int, counts []int) {
	if t == nil {
		return
	}
	ev := Event{Kind: KindSpace, Level: int32(level), Worker: int32(worker), Key: key, V1: float64(rows)}
	putCounts(&ev, counts)
	t.emit(ev)
}

// Merge records one bottom-up merge decision (see KindMerge for the
// verdict vocabulary).
func (t *Tracer) Merge(worker int, key, verdict string, p, diff float64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindMerge, Worker: int32(worker), Key: key, Arg: verdict, V1: p, V2: diff})
}

// Emit records a contrast entering the candidate stream.
func (t *Tracer) Emit(level, worker int, key string, score, chisq, p float64, counts []int) {
	if t == nil {
		return
	}
	ev := Event{Kind: KindEmit, Level: int32(level), Worker: int32(worker),
		Key: key, V1: score, V2: chisq, V3: p}
	putCounts(&ev, counts)
	t.emit(ev)
}

// TopK records a top-k list transition for the given itemset.
func (t *Tracer) TopK(key, verdict string, before, after float64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindTopK, Key: key, Arg: verdict, V1: before, V2: after})
}

// Filter records the final meaningfulness verdict for a contrast.
func (t *Tracer) Filter(key, verdict string, score float64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindFilter, Key: key, Arg: verdict, V1: score})
}

// Remine records one stream-monitor window re-mine as a span starting at
// startTS.
func (t *Tracer) Remine(startTS int64, rows, patterns int, wall time.Duration) {
	if t == nil {
		return
	}
	t.emitAt(startTS, Event{Kind: KindRemine,
		V1: float64(rows), V2: float64(patterns), V3: float64(wall)})
}

// Stats reports the tracer's cumulative volume counters: events offered,
// events dropped on overflow, and the buffer high-water mark. Safe to
// call concurrently with emitters; a nil tracer reports zeros.
func (t *Tracer) Stats() (emitted, dropped uint64, highWater int) {
	if t == nil {
		return 0, 0, 0
	}
	return t.emitted.Load(), t.dropped.Load(), int(t.fillHighWater())
}

// fillHighWater folds the current fill into the cross-Drain maximum.
func (t *Tracer) fillHighWater() uint64 {
	fill := t.next.Load()
	if fill > uint64(len(t.slots)) {
		fill = uint64(len(t.slots))
	}
	for {
		cur := t.highWater.Load()
		if fill <= cur {
			return cur
		}
		if t.highWater.CompareAndSwap(cur, fill) {
			return fill
		}
	}
}

// Trace is a snapshot of a tracer's buffer plus its volume counters — the
// value attached to core.Result.Trace and consumed by the exporters and
// the provenance index.
type Trace struct {
	// Events holds the published events in sequence order.
	Events []Event
	// Emitted counts events offered over the tracer's lifetime
	// (including dropped ones); Dropped counts buffer-full discards.
	Emitted, Dropped uint64
	// HighWater is the maximum buffer fill observed; Capacity the buffer
	// size.
	HighWater, Capacity int
}

// Snapshot copies the published events. It is safe while emitters are
// running (unpublished slots are skipped); for a complete record call it
// after mining returns. A nil tracer yields an empty trace.
func (t *Tracer) Snapshot() *Trace {
	if t == nil {
		return &Trace{}
	}
	fill := t.next.Load()
	if fill > uint64(len(t.slots)) {
		fill = uint64(len(t.slots))
	}
	tr := &Trace{
		Emitted:   t.emitted.Load(),
		Dropped:   t.dropped.Load(),
		HighWater: int(t.fillHighWater()),
		Capacity:  len(t.slots),
	}
	tr.Events = make([]Event, 0, fill)
	for i := uint64(0); i < fill; i++ {
		if t.ready[i].Load() == 1 {
			tr.Events = append(tr.Events, t.slots[i])
		}
	}
	return tr
}

// Drain snapshots the buffer and resets it for reuse, keeping the
// cumulative Emitted/Dropped/HighWater counters — the per-window segment
// primitive cmd/monitor uses between re-mines. Unlike Snapshot, Drain
// must not race with emitters (quiesce the miner first; the stream
// monitor is single-threaded between re-mines, which is the intended
// call point).
func (t *Tracer) Drain() *Trace {
	if t == nil {
		return &Trace{}
	}
	tr := t.Snapshot()
	for i := range tr.Events {
		t.ready[tr.Events[i].Seq].Store(0)
	}
	t.next.Store(0)
	return tr
}
