package trace

// Index is the pattern-provenance index: every event that names a
// canonical itemset key, grouped per key in sequence order. It powers the
// explain query path (core.Explain / `cmd/contrast -explain`).
type Index struct {
	byKey map[string][]Event
	order []Event // all events, sequence order
}

// NewIndex builds the provenance index of a trace.
func NewIndex(tr *Trace) *Index {
	ix := &Index{byKey: make(map[string][]Event)}
	if tr == nil {
		return ix
	}
	ix.order = tr.Events
	for _, e := range tr.Events {
		if e.Key != "" {
			ix.byKey[e.Key] = append(ix.byKey[e.Key], e)
		}
	}
	return ix
}

// Events returns the decision chain recorded for a canonical itemset key,
// in sequence order (nil when the pattern never generated an event).
func (ix *Index) Events(key string) []Event { return ix.byKey[key] }

// Keys reports how many distinct patterns have provenance.
func (ix *Index) Keys() int { return len(ix.byKey) }

// All returns every event in sequence order.
func (ix *Index) All() []Event { return ix.order }
