package trace

import (
	"sync"
	"testing"
	"time"
)

func TestKindStringsRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := kindFromString(name)
		if !ok || back != k {
			t.Errorf("kindFromString(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := kindFromString("nope"); ok {
		t.Error("unknown kind name must not resolve")
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	if tr.Capacity() != 0 || tr.Now() != 0 {
		t.Error("nil tracer accessors must return zeros")
	}
	// Every emitter must be callable on the nil receiver.
	tr.Level(0, 1, 2, 3, time.Millisecond)
	tr.Node(1, 0, "k", 5, []int{1, 2})
	tr.Prune(1, 0, "k", "rule", 1, 2)
	tr.SDAD(0, 0, "k", 5, time.Millisecond)
	tr.Split(1, 0, "k", "x", 1, 0, 2)
	tr.Space(1, 0, "k", 5, []int{1, 2})
	tr.Merge(0, "k", "merged", 0.5, 0.2)
	tr.Emit(1, 0, "k", 1, 2, 0.01, []int{1, 2})
	tr.TopK("k", "admitted", 0, 1)
	tr.Filter("k", "kept", 1)
	tr.Remine(0, 100, 5, time.Millisecond)
	if e, d, hw := tr.Stats(); e != 0 || d != 0 || hw != 0 {
		t.Error("nil tracer stats must be zero")
	}
	if snap := tr.Snapshot(); len(snap.Events) != 0 {
		t.Error("nil tracer snapshot must be empty")
	}
	if snap := tr.Drain(); len(snap.Events) != 0 {
		t.Error("nil tracer drain must be empty")
	}
}

// TestDisabledTracerAllocs is the zero-alloc proof for the disabled path:
// a nil tracer's emitters must not allocate (mirrors
// metrics.TestDisabledRecorderAllocs).
func TestDisabledTracerAllocs(t *testing.T) {
	var tr *Tracer
	counts := []int{10, 20}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Node(1, 0, "key", 30, counts)
		tr.Prune(1, 0, "key", "min_deviation", 0.05, 0.1)
		tr.Space(2, 0, "key", 30, counts)
		tr.Emit(1, 0, "key", 0.4, 12.5, 0.001, counts)
		tr.TopK("key", "admitted", 0.1, 0.2)
		tr.Filter("key", "kept", 0.4)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f times per run, want 0", allocs)
	}
}

// TestEnabledTracerEmitAllocs pins the enabled hot path: emitting into the
// preallocated buffer must not allocate either (events are fixed-size
// values; counts copy into the inline array).
func TestEnabledTracerEmitAllocs(t *testing.T) {
	tr := New(1 << 12)
	counts := []int{10, 20}
	allocs := testing.AllocsPerRun(500, func() {
		tr.Prune(1, 0, "key", "min_deviation", 0.05, 0.1)
		tr.Node(1, 0, "key", 30, counts)
	})
	if allocs != 0 {
		t.Errorf("enabled emit allocated %.1f times per run, want 0", allocs)
	}
}

func TestTracerRecordsEvents(t *testing.T) {
	tr := New(16)
	tr.Node(2, 1, "0=1", 30, []int{10, 20})
	tr.Prune(2, 1, "0=1", "min_deviation", 0.05, 0.1)
	snap := tr.Snapshot()
	if len(snap.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(snap.Events))
	}
	n := snap.Events[0]
	if n.Kind != KindNode || n.Key != "0=1" || n.Level != 2 || n.Worker != 1 || n.V1 != 30 {
		t.Errorf("node event mismatch: %+v", n)
	}
	if got := n.GroupCounts(); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("group counts = %v", got)
	}
	p := snap.Events[1]
	if p.Kind != KindPrune || p.Arg != "min_deviation" || p.V1 != 0.05 || p.V2 != 0.1 {
		t.Errorf("prune event mismatch: %+v", p)
	}
	if p.Seq != 1 || p.TS < n.TS {
		t.Errorf("sequence/timestamp order broken: %+v then %+v", n, p)
	}
}

func TestTracerOverflowDropsAndCounts(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.TopK("k", "admitted", 0, float64(i))
	}
	emitted, dropped, hw := tr.Stats()
	if emitted != 10 || dropped != 6 || hw != 4 {
		t.Errorf("stats = (%d, %d, %d), want (10, 6, 4)", emitted, dropped, hw)
	}
	snap := tr.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("snapshot holds %d events, want capacity 4", len(snap.Events))
	}
	// Drop-newest policy: the first four events survive.
	for i, e := range snap.Events {
		if e.V2 != float64(i) {
			t.Errorf("event %d: V2 = %v, want %d (early events must survive)", i, e.V2, i)
		}
	}
	if snap.Emitted != 10 || snap.Dropped != 6 || snap.HighWater != 4 || snap.Capacity != 4 {
		t.Errorf("snapshot counters = %+v", snap)
	}
}

func TestTracerConcurrentEmitters(t *testing.T) {
	tr := New(1 << 12)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Prune(1, w, "k", "rule", float64(i), 0)
			}
		}(w)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Events) != workers*per {
		t.Fatalf("got %d events, want %d", len(snap.Events), workers*per)
	}
	seen := make(map[uint64]bool, len(snap.Events))
	for _, e := range snap.Events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDrainResetsBufferKeepsCounters(t *testing.T) {
	tr := New(4)
	for i := 0; i < 6; i++ { // 2 dropped
		tr.Filter("k", "kept", float64(i))
	}
	seg1 := tr.Drain()
	if len(seg1.Events) != 4 || seg1.Emitted != 6 || seg1.Dropped != 2 {
		t.Fatalf("segment 1 = %d events, emitted %d, dropped %d", len(seg1.Events), seg1.Emitted, seg1.Dropped)
	}
	tr.Filter("k2", "kept", 9)
	seg2 := tr.Drain()
	if len(seg2.Events) != 1 || seg2.Events[0].Key != "k2" {
		t.Fatalf("segment 2 = %+v", seg2.Events)
	}
	// Cumulative counters survive the drain.
	if seg2.Emitted != 7 || seg2.Dropped != 2 || seg2.HighWater != 4 {
		t.Errorf("cumulative counters = %d/%d/%d, want 7/2/4", seg2.Emitted, seg2.Dropped, seg2.HighWater)
	}
}

func TestPutCountsTruncatesAtMaxGroups(t *testing.T) {
	tr := New(4)
	counts := make([]int, MaxGroups+3)
	for i := range counts {
		counts[i] = i + 1
	}
	tr.Node(1, 0, "k", 99, counts)
	snap := tr.Snapshot()
	got := snap.Events[0].GroupCounts()
	if len(got) != MaxGroups {
		t.Fatalf("kept %d counts, want %d", len(got), MaxGroups)
	}
	for i, c := range got {
		if c != i+1 {
			t.Errorf("count %d = %d, want %d", i, c, i+1)
		}
	}
}

func TestNewDefaultCapacity(t *testing.T) {
	if got := New(0).Capacity(); got != DefaultCapacity {
		t.Errorf("New(0).Capacity() = %d, want %d", got, DefaultCapacity)
	}
	if got := New(7).Capacity(); got != 7 {
		t.Errorf("New(7).Capacity() = %d, want 7", got)
	}
}

func TestIndexGroupsByKey(t *testing.T) {
	tr := New(16)
	tr.Node(1, 0, "a", 10, nil)
	tr.Prune(1, 0, "a", "not_large", 0.05, 0.1)
	tr.Node(1, 0, "b", 20, nil)
	tr.Level(0, 1, 3, 2, time.Millisecond) // key-less event
	ix := NewIndex(tr.Snapshot())
	if ix.Keys() != 2 {
		t.Errorf("indexed %d keys, want 2", ix.Keys())
	}
	a := ix.Events("a")
	if len(a) != 2 || a[0].Kind != KindNode || a[1].Kind != KindPrune {
		t.Errorf("chain for a = %+v", a)
	}
	if len(ix.Events("missing")) != 0 {
		t.Error("unknown key must yield no events")
	}
	if len(ix.All()) != 4 {
		t.Errorf("All() = %d events, want 4", len(ix.All()))
	}
	empty := NewIndex(nil)
	if empty.Keys() != 0 {
		t.Error("nil trace must index nothing")
	}
}
