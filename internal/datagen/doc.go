// Package datagen generates every workload the paper's evaluation uses.
//
// The module is offline and the paper's real datasets (UCI repository
// files, Intel manufacturing data) cannot be fetched, so each is replaced
// by a seeded synthetic generator that preserves the properties the
// evaluation exercises (see DESIGN.md §3):
//
//   - Figure2: the 1-D split-then-merge discretization example of §4.4.
//   - Simulated1..4: the four 2-attribute litmus datasets of Figure 3.
//   - Adult: a census-like mixed dataset (Doctorate vs. Bachelors) with the
//     univariate and age×hours interactions behind Table 1, Table 3 and
//     Figure 4.
//   - UCI / AllUCI: ten datasets shaped like Table 2 (group sizes, feature
//     counts — large ones scaled down) with planted contrast structure of
//     per-dataset strength.
//   - Manufacturing: a semiconductor packaging line dataset with a planted
//     failure signature (Table 7's chip-attach module / placement tool /
//     rear-row / reflow-temperature pattern).
//
// All generators are deterministic given their seed.
package datagen
