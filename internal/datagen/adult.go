package datagen

import (
	"math/rand"

	"sdadcs/internal/dataset"
)

// AdultConfig sizes the Adult-like census generator. The defaults follow
// Table 2: 8025 Bachelors and 594 Doctorate rows, 13 attributes of which 5
// are continuous.
type AdultConfig struct {
	Seed      int64
	Bachelors int
	Doctorate int
}

func (c *AdultConfig) defaults() {
	if c.Bachelors <= 0 {
		c.Bachelors = 8025
	}
	if c.Doctorate <= 0 {
		c.Doctorate = 594
	}
}

// Adult generates a census-like mixed dataset contrasting the Doctorate
// and Bachelors groups, with the structure the paper's Adult analysis
// surfaces:
//
//   - age: Bachelors include a young (19–26) segment absent among
//     Doctorates; Doctorates skew old (≈48% above 47).
//   - hours-per-week: Bachelors mostly ≤40; Doctorates overrepresented in
//     50–99.
//   - a multivariate age×hours interaction: Doctorates aged 49–69 work
//     long hours disproportionately often (Table 1's contrast 5).
//   - occupation: Prof-specialty at 0.76 (Doc) vs 0.28 (Bach) — the seed of
//     Table 3's redundant/unproductive top patterns.
//   - sex, class: moderately informative, independent of occupation within
//     each group, so Table 3's expected-support analysis holds.
//   - fnlwgt: uninformative; its full range is functionally dependent on
//     any other item (Table 3's redundancy example).
func Adult(cfg AdultConfig) *dataset.Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Bachelors + cfg.Doctorate

	age := make([]float64, 0, n)
	fnlwgt := make([]float64, 0, n)
	hours := make([]float64, 0, n)
	capGain := make([]float64, 0, n)
	eduNum := make([]float64, 0, n)
	occupation := make([]string, 0, n)
	sex := make([]string, 0, n)
	class := make([]string, 0, n)
	workclass := make([]string, 0, n)
	marital := make([]string, 0, n)
	race := make([]string, 0, n)
	relationship := make([]string, 0, n)
	country := make([]string, 0, n)
	groups := make([]string, 0, n)

	emit := func(group string) {
		doc := group == "Doctorate"
		a := adultAge(rng, doc)
		age = append(age, a)
		hours = append(hours, adultHours(rng, doc, a))
		fnlwgt = append(fnlwgt, 19302+rng.Float64()*(606111-19302))
		if doc {
			capGain = append(capGain, pick(rng, 0.25, rng.Float64()*15000, 0))
			eduNum = append(eduNum, 14.5+rng.NormFloat64()*1.2)
		} else {
			capGain = append(capGain, pick(rng, 0.12, rng.Float64()*8000, 0))
			eduNum = append(eduNum, 12.8+rng.NormFloat64()*1.2)
		}
		occupation = append(occupation, adultOccupation(rng, doc))
		sex = append(sex, choose(rng, boolToP(doc, 0.81, 0.69), "Male", "Female"))
		class = append(class, choose(rng, boolToP(doc, 0.73, 0.41), ">50K", "<=50K"))
		workclass = append(workclass, adultWorkclass(rng, doc))
		marital = append(marital, choose(rng, 0.55, "Married", "Single"))
		race = append(race, weighted(rng, []string{"White", "Black", "Asian", "Other"},
			[]float64{0.8, 0.1, 0.07, 0.03}))
		relationship = append(relationship, weighted(rng,
			[]string{"Husband", "Not-in-family", "Own-child", "Wife"},
			[]float64{0.45, 0.3, 0.1, 0.15}))
		country = append(country, choose(rng, 0.9, "United-States", "Other"))
		groups = append(groups, group)
	}
	for i := 0; i < cfg.Bachelors; i++ {
		emit("Bachelors")
	}
	for i := 0; i < cfg.Doctorate; i++ {
		emit("Doctorate")
	}

	return dataset.NewBuilder("Adult").
		AddContinuous("age", age).
		AddCategorical("workclass", workclass).
		AddContinuous("fnlwgt", fnlwgt).
		AddContinuous("education_num", eduNum).
		AddCategorical("marital_status", marital).
		AddCategorical("occupation", occupation).
		AddCategorical("relationship", relationship).
		AddCategorical("race", race).
		AddCategorical("sex", sex).
		AddContinuous("capital_gain", capGain).
		AddContinuous("hours_per_week", hours).
		AddCategorical("native_country", country).
		AddCategorical("class", class).
		SetGroups(groups).
		MustBuild()
}

// adultAge draws an age from the group-conditional mixture. Bachelors have
// a young segment (19–26) that Doctorates lack; Doctorates concentrate
// above 47.
func adultAge(rng *rand.Rand, doc bool) float64 {
	u := rng.Float64()
	if doc {
		switch {
		case u < 0.08:
			return uniform(rng, 27, 32)
		case u < 0.52:
			return uniform(rng, 32, 47)
		default: // 48%
			return uniform(rng, 47, 80)
		}
	}
	switch {
	case u < 0.16:
		return uniform(rng, 19, 26)
	case u < 0.54:
		return uniform(rng, 27, 39)
	case u < 0.78:
		return uniform(rng, 39, 47)
	default: // 22%
		return uniform(rng, 47, 75)
	}
}

// adultHours draws weekly hours conditioned on group and age — the
// conditioning is the multivariate interaction SDAD-CS should find: older
// Doctorates work long hours far more often than their marginal rate.
func adultHours(rng *rand.Rand, doc bool, age float64) float64 {
	pLong := 0.14 // Bachelors baseline for >50h
	if doc {
		pLong = 0.20
		if age > 47 && age <= 69 {
			pLong = 0.52
		}
	} else if age > 25 && age <= 39 {
		pLong = 0.10
	}
	u := rng.Float64()
	switch {
	case u < pLong:
		return uniform(rng, 51, 85)
	case u < pLong+0.25:
		return uniform(rng, 41, 50)
	default:
		return uniform(rng, 15, 40)
	}
}

func adultOccupation(rng *rand.Rand, doc bool) string {
	occs := []string{"Prof-specialty", "Exec-managerial", "Sales",
		"Craft-repair", "Adm-clerical", "Other-service", "Tech-support"}
	if doc {
		return weighted(rng, occs, []float64{0.76, 0.10, 0.03, 0.02, 0.03, 0.02, 0.04})
	}
	return weighted(rng, occs, []float64{0.28, 0.22, 0.14, 0.10, 0.12, 0.06, 0.08})
}

func adultWorkclass(rng *rand.Rand, doc bool) string {
	classes := []string{"Private", "Self-emp", "Government", "Academia"}
	if doc {
		return weighted(rng, classes, []float64{0.35, 0.10, 0.20, 0.35})
	}
	return weighted(rng, classes, []float64{0.70, 0.12, 0.13, 0.05})
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func pick(rng *rand.Rand, p, a, b float64) float64 {
	if rng.Float64() < p {
		return a
	}
	return b
}

func choose(rng *rand.Rand, p float64, a, b string) string {
	if rng.Float64() < p {
		return a
	}
	return b
}

func boolToP(cond bool, yes, no float64) float64 {
	if cond {
		return yes
	}
	return no
}

// weighted draws one of the values with the given (normalized) weights.
func weighted(rng *rand.Rand, values []string, weights []float64) string {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return values[i]
		}
	}
	return values[len(values)-1]
}
