package datagen

import (
	"math"
	"testing"

	"sdadcs/internal/dataset"
)

// suppIn returns the per-group support of rows with attr in (lo, hi].
func suppIn(d *dataset.Dataset, attr int, lo, hi float64) []float64 {
	counts := d.All().FilterRange(attr, lo, hi).GroupCounts()
	sizes := d.GroupSizes()
	out := make([]float64, len(counts))
	for g := range counts {
		if sizes[g] > 0 {
			out[g] = float64(counts[g]) / float64(sizes[g])
		}
	}
	return out
}

func TestFigure2Shape(t *testing.T) {
	d := Figure2(1, 2000)
	if d.Rows() != 2000 || d.NumAttrs() != 1 {
		t.Fatalf("shape: rows=%d attrs=%d", d.Rows(), d.NumAttrs())
	}
	sizes := d.GroupSizes()
	gA := d.GroupIndex("A")
	gB := d.GroupIndex("B")
	if gA < 0 || gB < 0 {
		t.Fatal("missing groups")
	}
	fracA := float64(sizes[gA]) / float64(d.Rows())
	if math.Abs(fracA-0.02) > 0.005 {
		t.Errorf("group A fraction = %v, want ~0.02", fracA)
	}
	// Left of the median must be pure B (PR = 1), as in the §4.4 example.
	med := d.All().Median(0)
	left := d.All().FilterRange(0, math.Inf(-1), med).GroupCounts()
	if left[gA] != 0 {
		t.Errorf("left of median has %d A rows, want 0", left[gA])
	}
	// All of A lives in (62, 75].
	inRange := d.All().FilterRange(0, 62, 75).GroupCounts()
	if inRange[gA] != sizes[gA] {
		t.Errorf("A rows in (62,75] = %d, want all %d", inRange[gA], sizes[gA])
	}
}

func TestSimulated1Separation(t *testing.T) {
	d := Simulated1(2, 2000)
	g1 := d.GroupIndex("Group1")
	g2 := d.GroupIndex("Group2")
	// Attribute 1 below 0.5 is pure Group2 and above is pure Group1.
	s := suppIn(d, 0, math.Inf(-1), 0.5)
	if s[g1] != 0 {
		t.Errorf("Group1 support below 0.5 = %v, want 0", s[g1])
	}
	if s[g2] < 0.95 {
		t.Errorf("Group2 support below 0.5 = %v, want ~1", s[g2])
	}
	// Attributes 1 and 2 are correlated.
	if corr(d, 0, 1) < 0.8 {
		t.Errorf("correlation = %v, want > 0.8", corr(d, 0, 1))
	}
}

func TestSimulated2NoUnivariateContrast(t *testing.T) {
	d := Simulated2(3, 4000)
	// Univariate halves carry almost no contrast…
	for attr := 0; attr < 2; attr++ {
		med := d.All().Median(attr)
		s := suppIn(d, attr, math.Inf(-1), med)
		if math.Abs(s[0]-s[1]) > 0.1 {
			t.Errorf("attr %d median split diff = %v, want ~0", attr, math.Abs(s[0]-s[1]))
		}
	}
	// …but a joint corner box does: attr0 low & attr1 high separates arms.
	corner := d.All().FilterRange(0, math.Inf(-1), 0.35).FilterRange(1, 0.65, math.Inf(1))
	counts := corner.GroupCounts()
	sizes := d.GroupSizes()
	diff := math.Abs(float64(counts[0])/float64(sizes[0]) - float64(counts[1])/float64(sizes[1]))
	if diff < 0.1 {
		t.Errorf("corner box diff = %v, want noticeable contrast", diff)
	}
}

func TestSimulated3OnlyLevelOne(t *testing.T) {
	d := Simulated3(4, 2000)
	g2 := d.GroupIndex("Group2")
	s := suppIn(d, 0, math.Inf(-1), 0.5)
	if s[g2] < 0.95 {
		t.Errorf("Group2 below 0.5 support = %v, want ~1", s[g2])
	}
	// Attribute 2 is uninformative.
	s2 := suppIn(d, 1, math.Inf(-1), d.All().Median(1))
	if math.Abs(s2[0]-s2[1]) > 0.08 {
		t.Errorf("attr2 split diff = %v, want ~0", math.Abs(s2[0]-s2[1]))
	}
}

func TestSimulated4JointRegions(t *testing.T) {
	d := Simulated4(5, 4000)
	g1 := d.GroupIndex("Group1")
	g2 := d.GroupIndex("Group2")
	// The joint region (x<0.25, y<0.5) is dominated by Group1.
	box := d.All().FilterRange(0, math.Inf(-1), 0.25).FilterRange(1, math.Inf(-1), 0.5)
	counts := box.GroupCounts()
	purity := float64(counts[g1]) / float64(counts[g1]+counts[g2])
	if purity < 0.85 {
		t.Errorf("joint region Group1 purity = %v, want > 0.85", purity)
	}
}

func TestSimulatedDeterminism(t *testing.T) {
	a := Simulated2(42, 500)
	b := Simulated2(42, 500)
	for r := 0; r < a.Rows(); r++ {
		if a.Cont(0, r) != b.Cont(0, r) || a.Group(r) != b.Group(r) {
			t.Fatal("same seed should reproduce identical data")
		}
	}
	c := Simulated2(43, 500)
	same := true
	for r := 0; r < a.Rows() && same; r++ {
		same = a.Cont(0, r) == c.Cont(0, r)
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSimulatedDefaultSizes(t *testing.T) {
	if Figure2(1, 0).Rows() != 1000 {
		t.Error("Figure2 default size wrong")
	}
	if Simulated1(1, 0).Rows() != 1000 {
		t.Error("Simulated1 default size wrong")
	}
	if Simulated4(1, 0).Rows() != 2000 {
		t.Error("Simulated4 default size wrong")
	}
}

// corr computes the Pearson correlation of two continuous attributes.
func corr(d *dataset.Dataset, a, b int) float64 {
	n := float64(d.Rows())
	var sa, sb, saa, sbb, sab float64
	for r := 0; r < d.Rows(); r++ {
		x, y := d.Cont(a, r), d.Cont(b, r)
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	return cov / math.Sqrt(va*vb)
}
