package datagen

import (
	"fmt"
	"math/rand"

	"sdadcs/internal/dataset"
)

// ManufacturingConfig sizes the semiconductor packaging dataset of §6. The
// defaults give a dataset the miner handles in well under a second; the
// scaling experiment grows Rows and Features.
type ManufacturingConfig struct {
	Seed int64
	// Population and Failed are the group sizes ("sample of the entire
	// population" vs "parts that failed a particular test").
	Population int
	Failed     int
	// Features is the total attribute count; the paper's dataset has 148
	// attributes of which ~30 are continuous. Values below the 11 planted
	// attributes are clamped. Roughly 1/5 of the extra features are
	// continuous noise, the rest categorical noise, approximating the
	// paper's mix.
	Features int
}

func (c *ManufacturingConfig) defaults() {
	if c.Population <= 0 {
		c.Population = 2000
	}
	if c.Failed <= 0 {
		c.Failed = 500
	}
	if c.Features < 11 {
		c.Features = 40
	}
}

// Manufacturing generates packaging/test line data with the planted failure
// signature of Table 7: failures concentrate on chip-attach module SCE with
// placement tool JVF, in the rear tray row, with elevated reflow-oven
// thermal profiles (peak temperature, time above solder liquidus, peak
// temperature std, die temp above std). Per-bin support levels follow
// Table 7's population→sample pairs.
func Manufacturing(cfg ManufacturingConfig) *dataset.Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Population + cfg.Failed

	camEntity := make([]string, n)
	placementTool := make([]string, n)
	camRow := make([]string, n)
	trayCol := make([]string, n)
	peakTempStd := make([]float64, n)
	dieTempAbove := make([]float64, n)
	timeAboveLiq := make([]float64, n)
	peakTemp := make([]float64, n)
	groups := make([]string, n)

	for i := 0; i < n; i++ {
		failed := i >= cfg.Population
		if failed {
			groups[i] = "Failed"
		} else {
			groups[i] = "Population"
		}

		// CAM entity: SCE support 0.28 (population) -> 0.55 (failed).
		pSCE := 0.28
		if failed {
			pSCE = 0.55
		}
		onSCE := rng.Float64() < pSCE
		if onSCE {
			camEntity[i] = "SCE"
		} else {
			camEntity[i] = []string{"SCF", "SCG", "SCH"}[rng.Intn(3)]
		}
		// Placement tool JVF is physically attached to module SCE, so the
		// two contrasts in Table 7 carry identical supports.
		if onSCE {
			placementTool[i] = "JVF"
		} else {
			placementTool[i] = []string{"JVA", "JVB", "JVC"}[rng.Intn(3)]
		}
		// Rear tray row: 0.34 -> 0.50.
		pRear := 0.34
		if failed {
			pRear = 0.50
		}
		if rng.Float64() < pRear {
			camRow[i] = "Rear"
		} else {
			camRow[i] = []string{"Front", "Middle"}[rng.Intn(2)]
		}
		trayCol[i] = fmt.Sprintf("C%d", rng.Intn(8)+1)

		// Thermal profile. The planted story: the rear lane of the reflow
		// oven on module SCE runs hot, so the elevated-range probabilities
		// are higher for failed parts (Table 7's bins).
		// The elevated bins sit at the top of each sensor's range (the
		// physical story: a hot rear lane pushes readings high), so the
		// off-bin mass lies below the bin and median splits isolate it.
		peakTempStd[i] = binned(rng, boolToP(failed, 0.62, 0.45),
			10.5106, 10.6534, 10.0, 10.68)
		dieTempAbove[i] = binned(rng, boolToP(failed, 0.30, 0.13),
			67.1875, 67.2486, 67.0, 67.5)
		timeAboveLiq[i] = binned(rng, boolToP(failed, 0.21, 0.04),
			92.0373, 92.8009, 88.0, 95.0)
		peakTemp[i] = binned(rng, boolToP(failed, 0.37, 0.24),
			254.1609, 256.8191, 245.0, 257.5)
	}

	b := dataset.NewBuilder("manufacturing").
		AddCategorical("CAM_entity", camEntity).
		AddCategorical("placement_tool", placementTool).
		AddCategorical("CAM_row_location", camRow).
		AddCategorical("tray_column", trayCol).
		AddContinuous("CAM_peak_temp_std", peakTempStd).
		AddContinuous("die_temp_above_std", dieTempAbove).
		AddContinuous("CAM_time_above_liquidus", timeAboveLiq).
		AddContinuous("CAM_peak_temperature", peakTemp)

	// Noise attributes up to the requested feature count: ~1/5 continuous
	// (sensor readings), rest categorical (equipment/material context).
	extra := cfg.Features - 8
	nCont := extra / 5
	for k := 0; k < extra; k++ {
		if k < nCont {
			col := make([]float64, n)
			for i := range col {
				col[i] = rng.NormFloat64()
			}
			b.AddContinuous(fmt.Sprintf("sensor_%d", k), col)
		} else {
			col := make([]string, n)
			dom := 2 + k%5
			for i := range col {
				col[i] = fmt.Sprintf("e%d", rng.Intn(dom))
			}
			b.AddCategorical(fmt.Sprintf("context_%d", k), col)
		}
	}

	b.SetGroups(groups)
	return b.MustBuild()
}

// binned draws a value that falls in (lo, hi] with probability pIn, and
// otherwise uniformly in the surrounding range (outLo, lo] ∪ (hi, outHi].
func binned(rng *rand.Rand, pIn, lo, hi, outLo, outHi float64) float64 {
	if rng.Float64() < pIn {
		return lo + rng.Float64()*(hi-lo) + 1e-9
	}
	below := lo - outLo
	above := outHi - hi
	if rng.Float64() < below/(below+above) {
		return outLo + rng.Float64()*below
	}
	return hi + rng.Float64()*above + 1e-9
}
