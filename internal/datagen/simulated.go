package datagen

import (
	"math/rand"

	"sdadcs/internal/dataset"
)

// Figure2 generates the 1-D example of §4.4: one continuous attribute X and
// two groups where group "A" is 2% of the data and is concentrated in a
// sub-range of the upper half, so the first median split leaves a pure "B"
// space on the left and further splits isolate "A" on the right.
func Figure2(seed int64, n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	if n <= 0 {
		n = 1000
	}
	nA := n / 50 // 2%
	x := make([]float64, 0, n)
	g := make([]string, 0, n)
	for i := 0; i < n-nA; i++ {
		x = append(x, rng.Float64()*100)
		g = append(g, "B")
	}
	for i := 0; i < nA; i++ {
		x = append(x, 62+rng.Float64()*13) // A lives in (62, 75)
		g = append(g, "A")
	}
	shuffle2(rng, x, g)
	return dataset.NewBuilder("figure2").
		AddContinuous("X", x).
		SetGroups(g).
		MustBuild()
}

// Simulated1 generates Figure 3a: two correlated attributes where the
// groups are perfectly separated by a single split on Attribute 1. The
// correct answer is the one univariate split (PR = 1 on both sides); the
// inter-attribute correlation is a decoy that MVD reacts to.
func Simulated1(seed int64, n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	if n <= 0 {
		n = 1000
	}
	a1 := make([]float64, n)
	a2 := make([]float64, n)
	g := make([]string, n)
	for i := range a1 {
		v := rng.Float64()
		a1[i] = v
		a2[i] = v + rng.NormFloat64()*0.1 // correlated with attribute 1
		if v < 0.5 {
			g[i] = "Group2"
		} else {
			g[i] = "Group1"
		}
	}
	return dataset.NewBuilder("simulated1").
		AddContinuous("Attribute1", a1).
		AddContinuous("Attribute2", a2).
		SetGroups(g).
		MustBuild()
}

// Simulated2 generates Figure 3b: two multivariate Gaussians in the shape
// of an "X". Neither attribute separates the groups on its own; the
// contrast only exists in joint (rectangular) regions, which is the
// multivariate-interaction litmus test.
func Simulated2(seed int64, n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	if n <= 0 {
		n = 1000
	}
	a1 := make([]float64, n)
	a2 := make([]float64, n)
	g := make([]string, n)
	for i := range a1 {
		t := rng.NormFloat64() * 0.22
		noise := rng.NormFloat64() * 0.045
		if i%2 == 0 {
			// Main diagonal arm.
			a1[i] = 0.5 + t
			a2[i] = 0.5 + t + noise
			g[i] = "Group1"
		} else {
			// Anti-diagonal arm.
			a1[i] = 0.5 + t
			a2[i] = 0.5 - t + noise
			g[i] = "Group2"
		}
	}
	return dataset.NewBuilder("simulated2").
		AddContinuous("Attribute1", a1).
		AddContinuous("Attribute2", a2).
		SetGroups(g).
		MustBuild()
}

// Simulated3 generates Figure 3c: two independent uniform attributes where
// the only structure is Attribute1 < 0.5 ⇒ Group2. Contrasts exist at
// level 1 only; anything found at higher levels is meaningless.
func Simulated3(seed int64, n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	if n <= 0 {
		n = 1000
	}
	a1 := make([]float64, n)
	a2 := make([]float64, n)
	g := make([]string, n)
	for i := range a1 {
		a1[i] = rng.Float64()
		a2[i] = rng.Float64()
		if a1[i] < 0.5 {
			g[i] = "Group2"
		} else {
			g[i] = "Group1"
		}
	}
	return dataset.NewBuilder("simulated3").
		AddContinuous("Attribute1", a1).
		AddContinuous("Attribute2", a2).
		SetGroups(g).
		MustBuild()
}

// Simulated4 generates Figure 3d: interactions appear at level 2 of the
// search tree. Group membership depends jointly on both attributes over a
// grid whose marginal projections also show (weaker) level-1 contrasts in
// Attribute1 ∈ [0, 0.25] ∪ [0.75, 1] and Attribute2 ∈ [0, 0.5] ∪ [0.75, 1],
// matching the paper's description. The level-1 contrasts are not
// independently productive once the joint regions are found.
func Simulated4(seed int64, n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	if n <= 0 {
		n = 2000
	}
	a1 := make([]float64, n)
	a2 := make([]float64, n)
	g := make([]string, n)
	for i := range a1 {
		x := rng.Float64()
		y := rng.Float64()
		a1[i] = x
		a2[i] = y
		// Joint regions that are (nearly) pure Group1; elsewhere Group2
		// dominates. Chosen so each marginal range above also carries a
		// weak univariate signal.
		inG1 := (x < 0.25 && y < 0.5) ||
			(x > 0.75 && y > 0.75) ||
			(x >= 0.25 && x <= 0.75 && y > 0.75 && x > 0.6)
		if inG1 != (rng.Float64() < 0.05) { // 5% label noise
			g[i] = "Group1"
		} else {
			g[i] = "Group2"
		}
	}
	return dataset.NewBuilder("simulated4").
		AddContinuous("Attribute1", a1).
		AddContinuous("Attribute2", a2).
		SetGroups(g).
		MustBuild()
}

// shuffle2 applies one permutation to a float and a string slice in lockstep.
func shuffle2(rng *rand.Rand, x []float64, g []string) {
	rng.Shuffle(len(x), func(i, j int) {
		x[i], x[j] = x[j], x[i]
		g[i], g[j] = g[j], g[i]
	})
}
