package datagen

import (
	"math"
	"testing"
)

func TestAdultShape(t *testing.T) {
	d := Adult(AdultConfig{Seed: 1})
	if d.Rows() != 8025+594 {
		t.Errorf("rows = %d", d.Rows())
	}
	if d.NumAttrs() != 13 {
		t.Errorf("attrs = %d, want 13", d.NumAttrs())
	}
	if got := len(d.ContinuousAttrs()); got != 5 {
		t.Errorf("continuous attrs = %d, want 5", got)
	}
	sizes := d.GroupSizes()
	if sizes[d.GroupIndex("Bachelors")] != 8025 || sizes[d.GroupIndex("Doctorate")] != 594 {
		t.Errorf("group sizes = %v", sizes)
	}
}

func TestAdultAgeStructure(t *testing.T) {
	d := Adult(AdultConfig{Seed: 2})
	doc := d.GroupIndex("Doctorate")
	bach := d.GroupIndex("Bachelors")
	ageAttr := d.AttrIndex("age")

	// Table 1 row 1: 18 < age <= 26 has support 0 (Doc) vs ~0.16 (Bach).
	s := suppIn(d, ageAttr, 18, 26)
	if s[doc] != 0 {
		t.Errorf("Doctorate support in (18,26] = %v, want 0", s[doc])
	}
	if math.Abs(s[bach]-0.16) > 0.03 {
		t.Errorf("Bachelors support in (18,26] = %v, want ~0.16", s[bach])
	}

	// Table 1 row 2: 47 < age <= 90: ~0.48 (Doc) vs ~0.22 (Bach).
	s = suppIn(d, ageAttr, 47, 90)
	if math.Abs(s[doc]-0.48) > 0.05 {
		t.Errorf("Doctorate support in (47,90] = %v, want ~0.48", s[doc])
	}
	if math.Abs(s[bach]-0.22) > 0.05 {
		t.Errorf("Bachelors support in (47,90] = %v, want ~0.22", s[bach])
	}
}

func TestAdultHoursInteraction(t *testing.T) {
	d := Adult(AdultConfig{Seed: 3})
	doc := d.GroupIndex("Doctorate")
	bach := d.GroupIndex("Bachelors")
	age := d.AttrIndex("age")
	hours := d.AttrIndex("hours_per_week")

	// Table 1 row 5: 49 < age <= 69 and 50 < hours <= 99:
	// ~0.13 (Doc) vs ~0.03 (Bach).
	box := d.All().FilterRange(age, 49, 69).FilterRange(hours, 50, 99)
	counts := box.GroupCounts()
	sizes := d.GroupSizes()
	sDoc := float64(counts[doc]) / float64(sizes[doc])
	sBach := float64(counts[bach]) / float64(sizes[bach])
	if math.Abs(sDoc-0.13) > 0.05 {
		t.Errorf("Doctorate interaction support = %v, want ~0.13", sDoc)
	}
	if math.Abs(sBach-0.03) > 0.02 {
		t.Errorf("Bachelors interaction support = %v, want ~0.03", sBach)
	}
	// The interaction must exceed the product of the marginals for
	// Doctorates (it is a real multivariate effect, not independence).
	mAge := suppIn(d, age, 49, 69)[doc]
	mHours := suppIn(d, hours, 50, 99)[doc]
	if sDoc <= mAge*mHours {
		t.Errorf("interaction %v should exceed product of marginals %v", sDoc, mAge*mHours)
	}
}

func TestAdultOccupation(t *testing.T) {
	d := Adult(AdultConfig{Seed: 4})
	doc := d.GroupIndex("Doctorate")
	bach := d.GroupIndex("Bachelors")
	occ := d.AttrIndex("occupation")
	sizes := d.GroupSizes()

	profCode := -1
	for c, v := range d.Domain(occ) {
		if v == "Prof-specialty" {
			profCode = c
		}
	}
	if profCode == -1 {
		t.Fatal("Prof-specialty missing from domain")
	}
	counts := d.All().FilterCat(occ, profCode).GroupCounts()
	sDoc := float64(counts[doc]) / float64(sizes[doc])
	sBach := float64(counts[bach]) / float64(sizes[bach])
	if math.Abs(sDoc-0.76) > 0.05 {
		t.Errorf("Doctorate Prof-specialty = %v, want ~0.76", sDoc)
	}
	if math.Abs(sBach-0.28) > 0.03 {
		t.Errorf("Bachelors Prof-specialty = %v, want ~0.28", sBach)
	}
}

func TestAdultCustomSizes(t *testing.T) {
	d := Adult(AdultConfig{Seed: 5, Bachelors: 100, Doctorate: 50})
	if d.Rows() != 150 {
		t.Errorf("rows = %d", d.Rows())
	}
}
