package datagen

import (
	"math"
	"testing"
)

func TestManufacturingShape(t *testing.T) {
	d := Manufacturing(ManufacturingConfig{Seed: 1})
	if d.Rows() != 2500 {
		t.Errorf("rows = %d", d.Rows())
	}
	if d.NumAttrs() != 40 {
		t.Errorf("attrs = %d, want 40 (default)", d.NumAttrs())
	}
	if d.NumGroups() != 2 {
		t.Errorf("groups = %d", d.NumGroups())
	}
}

func TestManufacturingSignature(t *testing.T) {
	d := Manufacturing(ManufacturingConfig{Seed: 2, Population: 8000, Failed: 2000})
	pop := d.GroupIndex("Population")
	fail := d.GroupIndex("Failed")
	sizes := d.GroupSizes()

	supp := func(attr int, value string) (float64, float64) {
		code := -1
		for c, v := range d.Domain(attr) {
			if v == value {
				code = c
			}
		}
		if code < 0 {
			t.Fatalf("value %q not in domain of attr %d", value, attr)
		}
		counts := d.All().FilterCat(attr, code).GroupCounts()
		return float64(counts[pop]) / float64(sizes[pop]),
			float64(counts[fail]) / float64(sizes[fail])
	}

	// Table 7: CAM entity SCE 0.28 -> 0.55.
	p, f := supp(d.AttrIndex("CAM_entity"), "SCE")
	if math.Abs(p-0.28) > 0.03 || math.Abs(f-0.55) > 0.04 {
		t.Errorf("SCE supports = %v -> %v, want 0.28 -> 0.55", p, f)
	}
	// Placement tool JVF mirrors the module exactly.
	p2, f2 := supp(d.AttrIndex("placement_tool"), "JVF")
	if p2 != p || f2 != f {
		t.Errorf("JVF should equal SCE supports: %v/%v vs %v/%v", p2, f2, p, f)
	}
	// Rear row 0.34 -> 0.50.
	p, f = supp(d.AttrIndex("CAM_row_location"), "Rear")
	if math.Abs(p-0.34) > 0.03 || math.Abs(f-0.50) > 0.04 {
		t.Errorf("Rear supports = %v -> %v, want 0.34 -> 0.50", p, f)
	}

	// Continuous bins from Table 7.
	rangeSupp := func(name string, lo, hi float64) (float64, float64) {
		attr := d.AttrIndex(name)
		counts := d.All().FilterRange(attr, lo, hi).GroupCounts()
		return float64(counts[pop]) / float64(sizes[pop]),
			float64(counts[fail]) / float64(sizes[fail])
	}
	p, f = rangeSupp("CAM_time_above_liquidus", 92.0373, 92.8009)
	if math.Abs(p-0.04) > 0.02 || math.Abs(f-0.21) > 0.03 {
		t.Errorf("time-above-liquidus supports = %v -> %v, want 0.04 -> 0.21", p, f)
	}
	p, f = rangeSupp("CAM_peak_temperature", 254.1609, 256.8191)
	if math.Abs(p-0.24) > 0.03 || math.Abs(f-0.37) > 0.04 {
		t.Errorf("peak-temperature supports = %v -> %v, want 0.24 -> 0.37", p, f)
	}
}

func TestManufacturingFeatureScaling(t *testing.T) {
	d := Manufacturing(ManufacturingConfig{Seed: 3, Population: 200, Failed: 50, Features: 120})
	if d.NumAttrs() != 120 {
		t.Errorf("attrs = %d, want 120", d.NumAttrs())
	}
	// Rough split: >= 20 continuous attributes at 120 features.
	if got := len(d.ContinuousAttrs()); got < 20 {
		t.Errorf("continuous attrs = %d, want >= 20", got)
	}
}

func TestManufacturingDeterminism(t *testing.T) {
	a := Manufacturing(ManufacturingConfig{Seed: 9, Population: 100, Failed: 30})
	b := Manufacturing(ManufacturingConfig{Seed: 9, Population: 100, Failed: 30})
	for r := 0; r < a.Rows(); r++ {
		if a.Cont(a.AttrIndex("CAM_peak_temperature"), r) !=
			b.Cont(b.AttrIndex("CAM_peak_temperature"), r) {
			t.Fatal("same seed should reproduce identical data")
		}
	}
}
