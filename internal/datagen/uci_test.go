package datagen

import (
	"math"
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/stats"
)

func TestTable2SpecsShape(t *testing.T) {
	specs := Table2Specs(1)
	if len(specs) != 10 {
		t.Fatalf("specs = %d, want 10", len(specs))
	}
	// Spot-check against Table 2 (scaled entries documented in uci.go).
	byName := map[string]UCISpec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	if s := byName["BreastCancer"]; s.N0 != 458 || s.N1 != 241 || s.Cont != 10 || s.Cat != 0 {
		t.Errorf("BreastCancer spec = %+v", s)
	}
	if s := byName["Spambase"]; s.Cont != 57 {
		t.Errorf("Spambase cont = %d, want 57", s.Cont)
	}
	if s := byName["Adult"]; s.Cat+s.Cont != 13 || s.Cont != 5 {
		t.Errorf("Adult feature counts = %d/%d", s.Cat+s.Cont, s.Cont)
	}
}

func TestUCIDatasetShapes(t *testing.T) {
	for _, spec := range Table2Specs(7) {
		d := UCIDataset(spec)
		if d.Rows() != spec.N0+spec.N1 {
			t.Errorf("%s: rows = %d, want %d", spec.Name, d.Rows(), spec.N0+spec.N1)
		}
		if got := len(d.ContinuousAttrs()); got != spec.Cont {
			t.Errorf("%s: continuous = %d, want %d", spec.Name, got, spec.Cont)
		}
		if got := len(d.CategoricalAttrs()); got != spec.Cat {
			t.Errorf("%s: categorical = %d, want %d", spec.Name, got, spec.Cat)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestPlantedStrengthCalibration(t *testing.T) {
	// The strongest informative feature's median-split support difference
	// should be close to the spec's Strength.
	spec := UCISpec{
		Name: "cal", Group0: "a", Group1: "b",
		N0: 4000, N1: 4000, Cont: 5, Strength: 0.6, Seed: 11,
	}
	d := Planted(spec)
	attr := d.AttrIndex("inf_0")
	if attr < 0 {
		t.Fatal("inf_0 missing")
	}
	med := d.All().Median(attr)
	s := suppIn(d, attr, math.Inf(-1), med)
	diff := math.Abs(s[0] - s[1])
	if math.Abs(diff-0.6) > 0.06 {
		t.Errorf("median-split diff = %v, want ~0.6", diff)
	}
}

func TestPlantedPureRegion(t *testing.T) {
	spec := UCISpec{
		Name: "p", Group0: "a", Group1: "b",
		N0: 1000, N1: 1000, Cont: 5, Strength: 0.8, Seed: 12,
	}
	d := Planted(spec)
	attr := d.AttrIndex("pure")
	if attr < 0 {
		t.Fatal("pure feature missing")
	}
	g1 := d.GroupIndex("b")
	low := d.All().FilterRange(attr, math.Inf(-1), 0.75).GroupCounts()
	if low[g1] != 0 {
		t.Errorf("group b rows below 0.75 = %d, want 0 (pure region)", low[g1])
	}
}

func TestPlantedXORInteraction(t *testing.T) {
	spec := UCISpec{
		Name: "x", Group0: "a", Group1: "b",
		N0: 3000, N1: 3000, Cont: 6, Strength: 0.7, Seed: 13,
	}
	d := Planted(spec)
	xa, xb := d.AttrIndex("xor_a"), d.AttrIndex("xor_b")
	if xa < 0 || xb < 0 {
		t.Fatal("xor features missing")
	}
	// Marginals are uninformative…
	for _, attr := range []int{xa, xb} {
		s := suppIn(d, attr, math.Inf(-1), 0.5)
		if math.Abs(s[0]-s[1]) > 0.06 {
			t.Errorf("xor marginal diff = %v, want ~0", math.Abs(s[0]-s[1]))
		}
	}
	// …but the low-low quadrant strongly favors group a.
	quad := d.All().FilterRange(xa, math.Inf(-1), 0.5).FilterRange(xb, math.Inf(-1), 0.5)
	counts := quad.GroupCounts()
	sizes := d.GroupSizes()
	diff := math.Abs(float64(counts[0])/float64(sizes[0]) - float64(counts[1])/float64(sizes[1]))
	if diff < 0.2 {
		t.Errorf("xor quadrant diff = %v, want strong contrast", diff)
	}
}

func TestPlantedRedundantFeature(t *testing.T) {
	spec := UCISpec{
		Name: "r", Group0: "a", Group1: "b",
		N0: 1000, N1: 1000, Cont: 8, Strength: 0.5, Seed: 14,
	}
	d := Planted(spec)
	inf0 := d.AttrIndex("inf_0")
	red := d.AttrIndex("redundant")
	if inf0 < 0 || red < 0 {
		t.Fatal("features missing")
	}
	if corr(d, inf0, red) < 0.98 {
		t.Errorf("redundant correlation = %v, want ~1", corr(d, inf0, red))
	}
}

func TestPlantedCategoricalSkew(t *testing.T) {
	spec := UCISpec{
		Name: "c", Group0: "a", Group1: "b",
		N0: 3000, N1: 3000, Cat: 4, Cont: 2, Strength: 0.8, Seed: 15,
	}
	d := Planted(spec)
	attr := d.AttrIndex("cat_0")
	if attr < 0 {
		t.Fatal("cat_0 missing")
	}
	code := -1
	for c, v := range d.Domain(attr) {
		if v == "v0" {
			code = c
		}
	}
	if code < 0 {
		t.Fatal("v0 not in domain")
	}
	counts := d.All().FilterCat(attr, code).GroupCounts()
	sizes := d.GroupSizes()
	sA := float64(counts[d.GroupIndex("a")]) / float64(sizes[d.GroupIndex("a")])
	sB := float64(counts[d.GroupIndex("b")]) / float64(sizes[d.GroupIndex("b")])
	if sB-sA < 0.15 {
		t.Errorf("categorical skew: a=%v b=%v, want b >> a", sA, sB)
	}
	// The chi-square test must flag the association.
	res, err := stats.ChiSquare2xK(counts, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) {
		t.Error("planted categorical skew should be significant")
	}
}

func TestShiftForDiff(t *testing.T) {
	if shiftForDiff(0) != 0 {
		t.Error("zero diff should give zero shift")
	}
	// Round trip: d -> shift -> implied diff.
	for _, d := range []float64{0.2, 0.5, 0.86} {
		s := shiftForDiff(d)
		implied := 2*stats.NormalCDF(s/2) - 1
		if math.Abs(implied-d) > 1e-9 {
			t.Errorf("round trip for %v: %v", d, implied)
		}
	}
	if math.IsInf(shiftForDiff(1.5), 1) {
		t.Error("overlarge diff should clamp, not blow up")
	}
}

func TestAllUCI(t *testing.T) {
	ds := AllUCI(3)
	if len(ds) != 10 {
		t.Fatalf("datasets = %d", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name()] = true
	}
	if !names["Adult"] || !names["Covtype"] {
		t.Error("missing expected dataset names")
	}
}

// Keep dataset import used even if tests above change.
var _ = dataset.Categorical
