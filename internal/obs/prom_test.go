package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sdadcs/internal/metrics"
)

// sampleHistogram builds a populated duration histogram snapshot.
func sampleHistogram(t *testing.T) metrics.HistogramSnapshot {
	t.Helper()
	var h metrics.Histogram
	for _, d := range []time.Duration{
		50 * time.Microsecond, 300 * time.Microsecond, 2 * time.Millisecond,
		2 * time.Millisecond, 40 * time.Millisecond, 3 * time.Second,
	} {
		h.Observe(d)
	}
	return h.Snapshot()
}

// render writes a family set and requires the encoder to succeed.
func render(t *testing.T, fams []Family) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteExposition(&buf, fams); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	return buf.Bytes()
}

// TestExpositionRoundTrip: everything the encoder emits must pass the
// strict parser — counters, gauges, labeled families, histograms — and
// two renders of the same state must be byte-identical.
func TestExpositionRoundTrip(t *testing.T) {
	labeled := Family{Name: "test_labeled_total", Help: "With labels.", Type: TypeCounter}
	for _, route := range []string{"GET /v1/jobs", "POST /v1/jobs"} {
		labeled.Samples = append(labeled.Samples, Sample{
			Labels: []Label{{Name: "route", Value: route}},
			Value:  3,
		})
	}
	fams := []Family{
		Counter("test_events_total", "A counter.", 42),
		Gauge("test_depth", "A gauge.", 7.5),
		labeled,
		HistogramFamily("test_latency_seconds", "A histogram.",
			[]Label{{Name: "route", Value: "GET /healthz"}}, sampleHistogram(t)),
	}
	first := render(t, fams)
	if err := LintExposition(first); err != nil {
		t.Fatalf("encoder output fails strict parse: %v\n%s", err, first)
	}
	second := render(t, fams)
	if !bytes.Equal(first, second) {
		t.Fatal("two renders of identical state differ")
	}
	for _, want := range []string{
		"# HELP test_events_total A counter.",
		"# TYPE test_events_total counter",
		"# TYPE test_depth gauge",
		"# TYPE test_latency_seconds histogram",
		`test_labeled_total{route="GET /v1/jobs"} 3`,
		`le="+Inf"`,
		"test_latency_seconds_sum",
		"test_latency_seconds_count",
	} {
		if !strings.Contains(string(first), want) {
			t.Errorf("exposition missing %q:\n%s", want, first)
		}
	}
}

// TestHistogramSamplesCumulative: the log2-bucketed snapshot converts to
// strictly ascending le values with non-decreasing cumulative counts
// terminated by +Inf == _count.
func TestHistogramSamplesCumulative(t *testing.T) {
	snap := sampleHistogram(t)
	samples := HistogramSamples(nil, snap)
	var lastLe, lastCount float64
	var infSeen bool
	var count float64
	for _, s := range samples {
		switch s.Suffix {
		case "_bucket":
			le := s.Labels[len(s.Labels)-1]
			if le.Name != "le" {
				t.Fatalf("bucket without trailing le label: %+v", s)
			}
			if le.Value == "+Inf" {
				infSeen = true
				continue
			}
			if infSeen {
				t.Fatal("finite bucket after +Inf")
			}
			v, err := parseValue(le.Value)
			if err != nil {
				t.Fatalf("unparsable le %q", le.Value)
			}
			if v <= lastLe {
				t.Fatalf("le not ascending: %v after %v", v, lastLe)
			}
			if s.Value < lastCount {
				t.Fatalf("counts not cumulative: %v after %v", s.Value, lastCount)
			}
			lastLe, lastCount = v, s.Value
		case "_count":
			count = s.Value
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket")
	}
	if count != float64(snap.Count) {
		t.Fatalf("_count %v != snapshot count %d", count, snap.Count)
	}
}

// TestWriteExpositionRejects: invalid names and types are loud errors.
func TestWriteExpositionRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, []Family{Counter("bad name", "x", 1)}); err == nil {
		t.Error("metric name with space: want error")
	}
	if err := WriteExposition(&buf, []Family{Counter("0leading", "x", 1)}); err == nil {
		t.Error("metric name with leading digit: want error")
	}
	if err := WriteExposition(&buf, []Family{{Name: "ok_total", Type: "timer", Samples: []Sample{{Value: 1}}}}); err == nil {
		t.Error("invalid family type: want error")
	}
	bad := Family{Name: "ok_total", Type: TypeCounter,
		Samples: []Sample{{Labels: []Label{{Name: "bad-label", Value: "x"}}, Value: 1}}}
	if err := WriteExposition(&buf, []Family{bad}); err == nil {
		t.Error("invalid label name: want error")
	}
}

// TestLabelValueEscaping: quotes, backslashes and newlines survive the
// encode/parse round trip.
func TestLabelValueEscaping(t *testing.T) {
	f := Family{Name: "test_escapes_total", Help: `Help with \backslash`, Type: TypeCounter,
		Samples: []Sample{{
			Labels: []Label{{Name: "v", Value: "quote\" back\\slash new\nline"}},
			Value:  1,
		}}}
	out := render(t, []Family{f})
	if err := LintExposition(out); err != nil {
		t.Fatalf("escaped output fails parse: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `v="quote\" back\\slash new\nline"`) {
		t.Errorf("escaping wrong:\n%s", out)
	}
}

// TestLintExpositionViolations: each malformed page is rejected with the
// right complaint.
func TestLintExpositionViolations(t *testing.T) {
	cases := []struct {
		name string
		page string
		want string
	}{
		{"sample without declaration",
			"orphan_total 1\n",
			"no HELP/TYPE"},
		{"help without type",
			"# HELP x_total h\nx_total 1\n",
			"before its TYPE"},
		{"type without help",
			"# TYPE x_total counter\nx_total 1\n",
			"without preceding HELP"},
		{"duplicate family",
			"# HELP x_total h\n# TYPE x_total counter\nx_total 1\n# HELP x_total h\n# TYPE x_total counter\n",
			"duplicate family"},
		{"non-contiguous family",
			"# HELP a_total h\n# TYPE a_total counter\na_total 1\n# HELP b_total h\n# TYPE b_total counter\nb_total 1\na_total 2\n",
			"contiguous"},
		{"duplicate series",
			"# HELP x_total h\n# TYPE x_total counter\nx_total 1\nx_total 2\n",
			"duplicate series"},
		{"invalid metric name",
			"# HELP 1x h\n# TYPE 1x counter\n1x 1\n",
			"invalid metric name"},
		{"invalid type",
			"# HELP x h\n# TYPE x meter\nx 1\n",
			"invalid type"},
		{"unquoted label",
			"# HELP x h\n# TYPE x counter\nx{l=v} 1\n",
			"unquoted"},
		{"bad escape",
			"# HELP x h\n# TYPE x counter\nx{l=\"a\\t\"} 1\n",
			"invalid escape"},
		{"unparsable value",
			"# HELP x h\n# TYPE x counter\nx one\n",
			"unparsable value"},
		{"family without samples",
			"# HELP x h\n# TYPE x counter\n",
			"no samples"},
		{"histogram missing inf",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf"},
		{"histogram non-cumulative",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative"},
		{"histogram le out of order",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"not ascending"},
		{"histogram inf != count",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"_count"},
		{"histogram missing sum",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"_sum"},
		{"histogram inf not terminal",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 2\n",
			"terminal"},
	}
	for _, c := range cases {
		err := LintExposition([]byte(c.page))
		if err == nil {
			t.Errorf("%s: want error, got nil", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestLintExpositionAccepts: valid pages (histogram with labels, escaped
// values, gauges) parse clean.
func TestLintExpositionAccepts(t *testing.T) {
	page := strings.Join([]string{
		"# HELP good_total A counter.",
		"# TYPE good_total counter",
		`good_total{route="GET /x",code="2xx"} 10`,
		`good_total{route="GET /y",code="2xx"} 3`,
		"# HELP lat_seconds Latency.",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{route="a",le="0.1"} 1`,
		`lat_seconds_bucket{route="a",le="+Inf"} 4`,
		`lat_seconds_sum{route="a"} 0.5`,
		`lat_seconds_count{route="a"} 4`,
		`lat_seconds_bucket{route="b",le="0.1"} 0`,
		`lat_seconds_bucket{route="b",le="+Inf"} 1`,
		`lat_seconds_sum{route="b"} 2`,
		`lat_seconds_count{route="b"} 1`,
		"", // trailing newline
	}, "\n")
	if err := LintExposition([]byte(page)); err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
}
