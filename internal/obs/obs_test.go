package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
	}{
		{"", slog.LevelInfo},
		{"info", slog.LevelInfo},
		{"debug", slog.LevelDebug},
		{"warn", slog.LevelWarn},
		{"warning", slog.LevelWarn},
		{"error", slog.LevelError},
		{"ERROR", slog.LevelError},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel(verbose): want error")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := (Config{Format: "json", Output: &buf}).NewLogger()
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	var rec map[string]any
	if jerr := json.Unmarshal(buf.Bytes(), &rec); jerr != nil {
		t.Fatalf("json format did not produce JSON: %v\n%s", jerr, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Errorf("unexpected record: %v", rec)
	}

	buf.Reset()
	log, err = (Config{Format: "text", Level: "warn", Output: &buf}).NewLogger()
	if err != nil {
		t.Fatal(err)
	}
	log.Info("filtered")
	log.Warn("kept")
	if strings.Contains(buf.String(), "filtered") || !strings.Contains(buf.String(), "kept") {
		t.Errorf("level filter broken: %s", buf.String())
	}

	if _, err := (Config{Format: "xml"}).NewLogger(); err == nil {
		t.Error("unknown format: want error")
	}
	if _, err := (Config{Level: "loud"}).NewLogger(); err == nil {
		t.Error("unknown level: want error")
	}
}

func TestContextHandlerStampsCorrelationIDs(t *testing.T) {
	var buf bytes.Buffer
	log, err := (Config{Format: "json", Output: &buf}).NewLogger()
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithJobID(WithRequestID(context.Background(), "req_abc"), "job_001")
	log.InfoContext(ctx, "both ids")
	log.With("component", "x").InfoContext(ctx, "after With")
	log.Info("no ctx")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 records, got %d", len(lines))
	}
	for i, want := range []bool{true, true, false} {
		var rec map[string]any
		if jerr := json.Unmarshal([]byte(lines[i]), &rec); jerr != nil {
			t.Fatal(jerr)
		}
		_, hasReq := rec["request_id"]
		_, hasJob := rec["job_id"]
		if hasReq != want || hasJob != want {
			t.Errorf("record %d: request_id=%v job_id=%v, want both %v: %s", i, hasReq, hasJob, want, lines[i])
		}
		if want && (rec["request_id"] != "req_abc" || rec["job_id"] != "job_001") {
			t.Errorf("record %d: wrong IDs: %s", i, lines[i])
		}
	}
}

func TestNewID(t *testing.T) {
	re := regexp.MustCompile(`^req_[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID("req")
		if !re.MatchString(id) {
			t.Fatalf("malformed ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestNopAndContextLog(t *testing.T) {
	if Nop() == nil || Or(nil) != Nop() {
		t.Fatal("Nop/Or(nil) broken")
	}
	if Log(context.Background()) != Nop() {
		t.Fatal("Log on bare context should be Nop")
	}
	var buf bytes.Buffer
	log, _ := (Config{Output: &buf}).NewLogger()
	ctx := WithLogger(context.Background(), log)
	Log(ctx).Info("carried")
	if !strings.Contains(buf.String(), "carried") {
		t.Fatalf("context logger not used: %s", buf.String())
	}
	if Nop().Enabled(context.Background(), slog.LevelError) {
		t.Fatal("Nop logger should refuse every level")
	}
}
