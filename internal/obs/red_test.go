package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdadcs/internal/metrics"
)

func wrap(t *testing.T, log *bytes.Buffer, h http.HandlerFunc) (*HTTPMetrics, http.Handler) {
	t.Helper()
	logger, err := (Config{Format: "json", Output: log}).NewLogger()
	if err != nil {
		t.Fatal(err)
	}
	m := NewHTTPMetrics()
	mw := &Middleware{Log: logger, Metrics: m}
	return m, mw.Wrap("GET /test", h)
}

func TestMiddlewareCountsAndLogs(t *testing.T) {
	var logBuf bytes.Buffer
	m, h := wrap(t, &logBuf, func(w http.ResponseWriter, r *http.Request) {
		if RequestID(r.Context()) == "" {
			t.Error("handler context has no request ID")
		}
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte("nope"))
	})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/test", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status %d", rr.Code)
	}
	rid := rr.Header().Get("X-Request-Id")
	if !strings.HasPrefix(rid, "req_") {
		t.Fatalf("minted request ID %q", rid)
	}

	snaps := m.Snapshot()
	if len(snaps) != 1 || snaps[0].Route != "GET /test" {
		t.Fatalf("snapshot: %+v", snaps)
	}
	s := snaps[0]
	if s.Requests != 1 || s.Errors != 0 || s.Classes[4] != 1 || s.Latency.Count != 1 {
		t.Fatalf("RED state: %+v", s)
	}

	var rec map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &rec); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, logBuf.String())
	}
	if rec["msg"] != "http request" || rec["request_id"] != rid ||
		rec["route"] != "GET /test" || rec["status"] != float64(404) ||
		rec["bytes"] != float64(4) {
		t.Fatalf("access log record: %v", rec)
	}
}

func TestMiddlewareAdoptsCallerRequestID(t *testing.T) {
	var logBuf bytes.Buffer
	_, h := wrap(t, &logBuf, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	req := httptest.NewRequest("GET", "/test", nil)
	req.Header.Set("X-Request-Id", "req_caller01")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get("X-Request-Id"); got != "req_caller01" {
		t.Fatalf("caller ID not adopted: %q", got)
	}
	if !strings.Contains(logBuf.String(), "req_caller01") {
		t.Fatalf("access log lost caller ID: %s", logBuf.String())
	}
}

func TestMiddlewareRecoversPanic(t *testing.T) {
	var logBuf bytes.Buffer
	m, h := wrap(t, &logBuf, func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/test", nil)) // must not propagate
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic status %d, want 500", rr.Code)
	}
	if m.Panics() != 1 {
		t.Fatalf("panics counter %d", m.Panics())
	}
	s := m.Snapshot()[0]
	if s.Errors != 1 || s.Classes[5] != 1 {
		t.Fatalf("panic not counted as 5xx: %+v", s)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "handler panic") || !strings.Contains(logs, "handler exploded") ||
		!strings.Contains(logs, "red_test.go") {
		t.Fatalf("panic log missing message or stack: %s", logs)
	}
}

func TestMiddlewareInFlight(t *testing.T) {
	var logBuf bytes.Buffer
	entered := make(chan struct{})
	release := make(chan struct{})
	m, h := wrap(t, &logBuf, func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	})
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/test", nil))
		close(done)
	}()
	<-entered
	if m.InFlight() != 1 {
		t.Fatalf("in-flight %d, want 1", m.InFlight())
	}
	close(release)
	<-done
	if m.InFlight() != 0 {
		t.Fatalf("in-flight %d after completion", m.InFlight())
	}
}

func TestREDFamiliesLint(t *testing.T) {
	var logBuf bytes.Buffer
	m, h := wrap(t, &logBuf, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Millisecond)
		w.Write([]byte("ok"))
	})
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/test", nil))
	}
	var buf bytes.Buffer
	if err := WriteExposition(&buf, REDFamilies("t_http_", m)); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("RED exposition fails strict parse: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`t_http_requests_total{route="GET /test"} 3`,
		`t_http_responses_total{route="GET /test",code="2xx"} 3`,
		"t_http_request_duration_seconds_bucket",
		"t_http_in_flight 0",
		"t_http_panics_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RED exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRuntimeAndMinerFamiliesLint(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, RuntimeFamilies()); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("runtime exposition fails strict parse: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "go_goroutines") {
		t.Fatalf("runtime exposition missing go_goroutines:\n%s", buf.String())
	}

	buf.Reset()
	snap := metrics.New().Snapshot()
	if err := WriteExposition(&buf, MinerFamilies("t_miner_", snap)); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("miner exposition fails strict parse: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"t_miner_sdad_calls_total", "t_miner_node_eval_seconds_count"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("miner exposition missing %q", want)
		}
	}
}
