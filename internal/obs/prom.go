package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"sdadcs/internal/metrics"
)

// FamilyType is the Prometheus metric type of a family.
type FamilyType string

// Exposition metric types.
const (
	TypeCounter   FamilyType = "counter"
	TypeGauge     FamilyType = "gauge"
	TypeHistogram FamilyType = "histogram"
)

// Label is one name="value" pair on a sample. Labels are written in the
// order given; callers keep that order fixed so two renders of the same
// state are byte-identical.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line of a family.
type Sample struct {
	// Suffix is appended to the family name — "_bucket", "_sum", "_count"
	// for histogram series, "" for plain samples.
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family: a HELP line, a TYPE line, and its samples
// in a caller-fixed order.
type Family struct {
	Name    string
	Help    string
	Type    FamilyType
	Samples []Sample
}

// Gauge builds a single-sample unlabeled gauge family.
func Gauge(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Type: TypeGauge,
		Samples: []Sample{{Value: v}}}
}

// Counter builds a single-sample unlabeled counter family.
func Counter(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Type: TypeCounter,
		Samples: []Sample{{Value: v}}}
}

// HistogramSamples flattens one duration-histogram snapshot into
// Prometheus histogram series under the given fixed labels: cumulative
// "_bucket" samples with seconds-valued le labels, the terminal
// le="+Inf" bucket, then "_sum" (seconds) and "_count". Several label
// sets (e.g. one per route) may be concatenated into one Family.
func HistogramSamples(labels []Label, s metrics.HistogramSnapshot) []Sample {
	cum := s.Cumulative()
	out := make([]Sample, 0, len(cum)+3)
	for _, b := range cum {
		le := append(append([]Label(nil), labels...),
			Label{Name: "le", Value: formatValue(float64(b.HiNanos) / 1e9)})
		out = append(out, Sample{Suffix: "_bucket", Labels: le, Value: float64(b.Count)})
	}
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	out = append(out,
		Sample{Suffix: "_bucket", Labels: inf, Value: float64(s.Count)},
		Sample{Suffix: "_sum", Labels: labels, Value: float64(s.TotalNanos) / 1e9},
		Sample{Suffix: "_count", Labels: labels, Value: float64(s.Count)},
	)
	return out
}

// HistogramFamily wraps one histogram snapshot as a complete family.
func HistogramFamily(name, help string, labels []Label, s metrics.HistogramSnapshot) Family {
	return Family{Name: name, Help: help, Type: TypeHistogram,
		Samples: HistogramSamples(labels, s)}
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip float, with the spelled-out infinities.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// escapeHelp escapes a HELP text (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value (backslash, quote, newline).
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteExposition renders the families in Prometheus text format
// (version 0.0.4): one "# HELP" and "# TYPE" line per family followed by
// its samples, in the order given. Output over the same input is
// byte-identical. Invalid metric or label names are an error — callers
// construct names statically, so an invalid name is a programming bug
// surfaced loudly rather than a malformed scrape surfaced by Prometheus.
func WriteExposition(w io.Writer, families []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range families {
		if !validMetricName(f.Name) {
			return fmt.Errorf("obs: invalid metric name %q", f.Name)
		}
		switch f.Type {
		case TypeCounter, TypeGauge, TypeHistogram:
		default:
			return fmt.Errorf("obs: metric %s: invalid type %q", f.Name, f.Type)
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			name := f.Name + s.Suffix
			if !validMetricName(name) {
				return fmt.Errorf("obs: invalid sample name %q", name)
			}
			bw.WriteString(name)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if !validLabelName(l.Name) {
						return fmt.Errorf("obs: metric %s: invalid label name %q", name, l.Name)
					}
					if i > 0 {
						bw.WriteByte(',')
					}
					fmt.Fprintf(bw, `%s="%s"`, l.Name, escapeLabelValue(l.Value))
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ContentType is the Content-Type header value for text exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ---- strict parser ----

// lintSeries is one parsed sample during linting.
type lintSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// labelKey renders a canonical identity for duplicate detection.
func (s lintSeries) labelKey() string {
	names := make([]string, 0, len(s.labels))
	for n := range s.labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.name)
	for _, n := range names {
		fmt.Fprintf(&b, "|%s=%q", n, s.labels[n])
	}
	return b.String()
}

// LintExposition strictly parses a Prometheus text-format page and
// returns the first violation found: metric/label name charsets, label
// value quoting, HELP/TYPE pairing (every sample belongs to a family
// whose HELP and TYPE were declared first, families are contiguous and
// unique), histogram discipline (cumulative non-decreasing le buckets,
// terminal +Inf equal to _count, a _sum and _count per label set), and
// duplicate series. It is the parser side of the encoder's contract and
// doubles as the CI scrape gate (cmd/promlint).
func LintExposition(data []byte) error {
	var fams []*family
	byName := map[string]*family{}
	var cur *family // family currently being declared/populated

	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch kind {
			case "HELP":
				if _, dup := byName[name]; dup {
					return fmt.Errorf("line %d: duplicate family %q", lineNo, name)
				}
				cur = &family{name: name}
				byName[name] = cur
				fams = append(fams, cur)
			case "TYPE":
				if cur == nil || cur.name != name {
					return fmt.Errorf("line %d: TYPE %s without preceding HELP", lineNo, name)
				}
				if cur.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					cur.typ = rest
				default:
					return fmt.Errorf("line %d: invalid type %q for %s", lineNo, rest, name)
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		owner := familyOf(byName, s.name)
		if owner == nil {
			return fmt.Errorf("line %d: sample %s has no HELP/TYPE declaration", lineNo, s.name)
		}
		if owner.typ == "" {
			return fmt.Errorf("line %d: sample %s before its TYPE line", lineNo, s.name)
		}
		if owner != cur {
			return fmt.Errorf("line %d: sample %s outside its contiguous family block", lineNo, s.name)
		}
		if s.name != owner.name && owner.typ != "histogram" && owner.typ != "summary" {
			return fmt.Errorf("line %d: sample %s does not match family %s", lineNo, s.name, owner.name)
		}
		owner.samples = append(owner.samples, s)
	}

	seen := map[string]int{}
	for _, f := range fams {
		if f.typ == "" {
			return fmt.Errorf("family %s: HELP without TYPE", f.name)
		}
		if len(f.samples) == 0 {
			return fmt.Errorf("family %s: declared but has no samples", f.name)
		}
		for _, s := range f.samples {
			k := s.labelKey()
			if prev, dup := seen[k]; dup {
				return fmt.Errorf("duplicate series %s (first seen as sample %d)", k, prev)
			}
			seen[k] = 1
		}
		if f.typ == "histogram" {
			if err := lintHistogram(f.name, f.samples); err != nil {
				return err
			}
		}
	}
	return nil
}

// familyOf resolves which declared family a sample name belongs to,
// accounting for the histogram/summary suffixes.
func familyOf(byName map[string]*family, name string) *family {
	if f, ok := byName[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, okf := byName[base]; okf && (f.typ == "histogram" || f.typ == "summary" || f.typ == "") {
				return f
			}
		}
	}
	return nil
}

// family is one declared metric family during linting.
type family struct {
	name    string
	typ     string
	samples []lintSeries
}

// lintHistogram checks one histogram family: per label set (minus le),
// bucket counts are cumulative over ascending le, the terminal bucket is
// le="+Inf", and its value equals the _count sample.
func lintHistogram(name string, samples []lintSeries) error {
	type group struct {
		les       []float64
		counts    []float64
		infCount  float64
		hasInf    bool
		count     float64
		hasCount  bool
		hasSum    bool
		lastIsInf bool
	}
	groups := map[string]*group{}
	key := func(labels map[string]string) string {
		s := lintSeries{name: name, labels: map[string]string{}}
		for k, v := range labels {
			if k != "le" {
				s.labels[k] = v
			}
		}
		return s.labelKey()
	}
	get := func(labels map[string]string) *group {
		k := key(labels)
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
		}
		return g
	}
	for _, s := range samples {
		g := get(s.labels)
		switch s.name {
		case name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", name)
			}
			if le == "+Inf" {
				g.hasInf = true
				g.infCount = s.value
				g.lastIsInf = true
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: unparsable le %q", name, le)
			}
			if g.hasInf {
				// A finite bucket after +Inf breaks the terminal rule.
				g.lastIsInf = false
			}
			g.les = append(g.les, v)
			g.counts = append(g.counts, s.value)
		case name + "_sum":
			g.hasSum = true
		case name + "_count":
			g.hasCount = true
			g.count = s.value
		default:
			return fmt.Errorf("histogram %s: unexpected sample %s", name, s.name)
		}
	}
	for k, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("histogram %s %s: missing le=\"+Inf\" bucket", name, k)
		}
		if !g.lastIsInf {
			return fmt.Errorf("histogram %s %s: le=\"+Inf\" is not the terminal bucket", name, k)
		}
		if !g.hasSum || !g.hasCount {
			return fmt.Errorf("histogram %s %s: missing _sum or _count", name, k)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("histogram %s %s: le values not ascending (%v after %v)", name, k, g.les[i], g.les[i-1])
			}
		}
		prev := math.Inf(-1)
		for i, c := range g.counts {
			if c < prev {
				return fmt.Errorf("histogram %s %s: bucket counts not cumulative at le=%v", name, k, g.les[i])
			}
			prev = c
		}
		if len(g.counts) > 0 && g.infCount < g.counts[len(g.counts)-1] {
			return fmt.Errorf("histogram %s %s: +Inf bucket below last finite bucket", name, k)
		}
		if g.infCount != g.count {
			return fmt.Errorf("histogram %s %s: +Inf bucket %v != _count %v", name, k, g.infCount, g.count)
		}
	}
	return nil
}

// parseComment splits a "# HELP name text" / "# TYPE name type" line.
func parseComment(line string) (kind, name, rest string, err error) {
	body, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return "", "", "", fmt.Errorf("malformed comment %q (only \"# HELP\" and \"# TYPE\" are emitted)", line)
	}
	parts := strings.SplitN(body, " ", 3)
	if len(parts) < 2 || (parts[0] != "HELP" && parts[0] != "TYPE") {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind, name = parts[0], parts[1]
	if len(parts) == 3 {
		rest = parts[2]
	}
	if kind == "TYPE" && rest == "" {
		return "", "", "", fmt.Errorf("TYPE line without a type: %q", line)
	}
	return kind, name, rest, nil
}

// parseSample parses one sample line: name{labels} value.
func parseSample(line string) (lintSeries, error) {
	s := lintSeries{labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.name = line[:i]
	if !validMetricName(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = parseLabels(rest[1:], s.labels)
		if err != nil {
			return s, fmt.Errorf("metric %s: %w", s.name, err)
		}
	}
	val, ok := strings.CutPrefix(rest, " ")
	if !ok {
		return s, fmt.Errorf("metric %s: missing value separator", s.name)
	}
	v, err := parseValue(val)
	if err != nil {
		return s, fmt.Errorf("metric %s: %w", s.name, err)
	}
	s.value = v
	return s, nil
}

// parseLabels consumes `name="value",...}` and returns the remainder.
func parseLabels(rest string, out map[string]string) (string, error) {
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("malformed label set")
		}
		name := rest[:eq]
		if !validLabelName(name) {
			return "", fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return "", fmt.Errorf("label %s: unquoted value", name)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", fmt.Errorf("label %s: dangling escape", name)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("label %s: invalid escape \\%c", name, rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return "", fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := out[name]; dup {
			return "", fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val.String()
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		return "", fmt.Errorf("malformed label separator after %s", name)
	}
}

// parseValue parses a sample value, accepting the spelled infinities.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparsable value %q", s)
	}
	return v, nil
}
