package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdadcs/internal/metrics"
)

// RouteMetrics is the RED state of one mounted route pattern.
type RouteMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64    // 5xx responses (including recovered panics)
	classes  [6]atomic.Int64 // responses by status/100 (1xx..5xx)
	latency  metrics.Histogram
}

// observe records one finished request.
func (rm *RouteMetrics) observe(status int, d time.Duration) {
	rm.requests.Add(1)
	if status >= 500 {
		rm.errors.Add(1)
	}
	if c := status / 100; c >= 1 && c <= 5 {
		rm.classes[c].Add(1)
	}
	rm.latency.Observe(d)
}

// HTTPMetrics aggregates the RED view of one HTTP surface: per-route
// request/error counters, status-class counts and latency histograms,
// plus surface-wide in-flight and recovered-panic counters. Routes are
// registered at mount time (Route), so the request path is lock-free.
type HTTPMetrics struct {
	mu     sync.Mutex
	routes map[string]*RouteMetrics

	inFlight atomic.Int64
	panics   atomic.Int64
}

// NewHTTPMetrics builds an empty RED aggregate.
func NewHTTPMetrics() *HTTPMetrics {
	return &HTTPMetrics{routes: make(map[string]*RouteMetrics)}
}

// Route returns (creating if needed) the stats slot of a route pattern.
func (m *HTTPMetrics) Route(route string) *RouteMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm, ok := m.routes[route]
	if !ok {
		rm = &RouteMetrics{}
		m.routes[route] = rm
	}
	return rm
}

// InFlight is the number of requests currently being served.
func (m *HTTPMetrics) InFlight() int64 { return m.inFlight.Load() }

// Panics is the number of handler panics recovered into 500s.
func (m *HTTPMetrics) Panics() int64 { return m.panics.Load() }

// RouteSnapshot is one route's RED state at snapshot time.
type RouteSnapshot struct {
	Route    string
	Requests int64
	Errors   int64
	Classes  [6]int64 // index status/100; 0 unused
	Latency  metrics.HistogramSnapshot
}

// Snapshot copies every route's state, sorted by route pattern so the
// exposition order is deterministic.
func (m *HTTPMetrics) Snapshot() []RouteSnapshot {
	m.mu.Lock()
	names := make([]string, 0, len(m.routes))
	for r := range m.routes {
		names = append(names, r)
	}
	routes := make(map[string]*RouteMetrics, len(m.routes))
	for r, rm := range m.routes {
		routes[r] = rm
	}
	m.mu.Unlock()

	sort.Strings(names)
	out := make([]RouteSnapshot, 0, len(names))
	for _, r := range names {
		rm := routes[r]
		s := RouteSnapshot{
			Route:    r,
			Requests: rm.requests.Load(),
			Errors:   rm.errors.Load(),
			Latency:  rm.latency.Snapshot(),
		}
		for c := 1; c <= 5; c++ {
			s.Classes[c] = rm.classes[c].Load()
		}
		out = append(out, s)
	}
	return out
}

// REDFamilies renders the RED aggregate as exposition families under the
// given metric-name prefix ("sdadcs_http_"): requests/errors/responses
// counters, per-route latency histograms, the in-flight gauge and the
// recovered-panics counter.
func REDFamilies(prefix string, m *HTTPMetrics) []Family {
	snaps := m.Snapshot()
	req := Family{Name: prefix + "requests_total", Help: "HTTP requests served, by route.", Type: TypeCounter}
	errs := Family{Name: prefix + "errors_total", Help: "HTTP 5xx responses (including recovered panics), by route.", Type: TypeCounter}
	resp := Family{Name: prefix + "responses_total", Help: "HTTP responses by route and status class.", Type: TypeCounter}
	dur := Family{Name: prefix + "request_duration_seconds", Help: "HTTP request latency, by route.", Type: TypeHistogram}
	for _, s := range snaps {
		route := []Label{{Name: "route", Value: s.Route}}
		req.Samples = append(req.Samples, Sample{Labels: route, Value: float64(s.Requests)})
		errs.Samples = append(errs.Samples, Sample{Labels: route, Value: float64(s.Errors)})
		for c := 1; c <= 5; c++ {
			if s.Classes[c] == 0 {
				continue
			}
			resp.Samples = append(resp.Samples, Sample{
				Labels: []Label{{Name: "route", Value: s.Route}, {Name: "code", Value: fmt.Sprintf("%dxx", c)}},
				Value:  float64(s.Classes[c]),
			})
		}
		dur.Samples = append(dur.Samples, HistogramSamples(route, s.Latency)...)
	}
	fams := make([]Family, 0, 6)
	if len(req.Samples) > 0 {
		fams = append(fams, req, errs)
	}
	if len(resp.Samples) > 0 {
		fams = append(fams, resp)
	}
	if len(dur.Samples) > 0 {
		fams = append(fams, dur)
	}
	fams = append(fams,
		Gauge(prefix+"in_flight", "HTTP requests currently being served.", float64(m.InFlight())),
		Counter(prefix+"panics_total", "Handler panics recovered into 500 responses.", float64(m.Panics())),
	)
	return fams
}

// statusWriter captures the response status and size, delegating Flush
// so streaming handlers (trace export) keep working.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware is the RED wrapper mounted around every route of a service
// mux: it assigns (or adopts) the request correlation ID, counts and
// times the request, emits one access-log line, and converts handler
// panics into logged 500s instead of process death.
type Middleware struct {
	// Log receives access-log and panic records (component-scoped by the
	// caller); nil disables logging but keeps metrics and recovery.
	Log *slog.Logger
	// Metrics receives the RED counters; required.
	Metrics *HTTPMetrics
}

// Wrap instruments one route pattern. The pattern is the metric label —
// path parameters stay templated ("GET /v1/jobs/{id}"), so cardinality
// is bounded by the mux, not by traffic.
func (mw *Middleware) Wrap(route string, next http.Handler) http.Handler {
	rm := mw.Metrics.Route(route)
	log := Or(mw.Log)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = NewID("req")
		}
		ctx := WithRequestID(r.Context(), rid)
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-Id", rid)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mw.Metrics.inFlight.Add(1)
		defer func() {
			d := time.Since(start)
			mw.Metrics.inFlight.Add(-1)
			if p := recover(); p != nil {
				mw.Metrics.panics.Add(1)
				log.ErrorContext(ctx, "handler panic",
					"route", route,
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(p),
					"stack", string(debug.Stack()))
				if !sw.wrote {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				} else if sw.status < 500 {
					// Headers already sent with a success status; the
					// connection is poisoned but the books should say 500.
					sw.status = http.StatusInternalServerError
				}
			}
			if !sw.wrote {
				sw.status = http.StatusOK
			}
			rm.observe(sw.status, d)
			log.InfoContext(ctx, "http request",
				"route", route,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"bytes", sw.bytes,
				"duration_ms", float64(d)/1e6)
		}()
		next.ServeHTTP(sw, r)
	})
}
