package obs

import (
	"context"
	"testing"
)

// The engine logs "mine start"/"mine done" through obs.Log(ctx) on every
// MineContext call, including library callers with a bare context. That
// path must stay free: Log falls back to the Nop logger, whose handler
// reports Enabled=false at every level, so slog discards the record
// before building it.

func TestNopPathAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		Log(ctx).InfoContext(ctx, "mine start", "algorithm", "sdadcs", "rows", 1000)
	}); n != 0 {
		t.Errorf("disabled-path log call allocates %.1f objects/op, want 0", n)
	}
}

func BenchmarkLogBareContext(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Log(ctx).InfoContext(ctx, "mine start", "algorithm", "sdadcs", "rows", 1000)
	}
}

func BenchmarkNopLogger(b *testing.B) {
	ctx := context.Background()
	log := Nop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		log.InfoContext(ctx, "mine done", "contrasts", 12, "duration_ms", int64(3))
	}
}
