package obs

import (
	"strconv"

	"sdadcs/internal/metrics"
)

// MinerFamilies flattens one miner instrumentation snapshot into
// exposition families under the given metric-name prefix
// ("sdadcs_miner_"). It is the Prometheus rendering of the same state
// the JSON /metrics endpoint serves: search-effort counters, per-rule
// prune hits, per-level node counts, the node-evaluation latency
// histogram, the top-k threshold, and stream re-mine totals.
func MinerFamilies(prefix string, s metrics.Snapshot) []Family {
	prune := Family{Name: prefix + "prune_hits_total", Help: "Pruning-rule firings, by rule.", Type: TypeCounter}
	for _, p := range s.Prune {
		prune.Samples = append(prune.Samples, Sample{
			Labels: []Label{{Name: "rule", Value: p.Rule}},
			Value:  float64(p.Hits),
		})
	}
	levels := Family{Name: prefix + "level_nodes_total", Help: "Frontier nodes evaluated, by search level.", Type: TypeCounter}
	var nodes, contrasts int64
	for _, lv := range s.Levels {
		nodes += lv.Nodes
		contrasts += lv.Contrasts
		levels.Samples = append(levels.Samples, Sample{
			Labels: []Label{{Name: "level", Value: strconv.Itoa(lv.Level)}},
			Value:  float64(lv.Nodes),
		})
	}
	fams := []Family{
		Counter(prefix+"nodes_total", "Frontier nodes evaluated across all levels.", float64(nodes)),
		Counter(prefix+"contrasts_total", "Contrast candidates emitted by the search.", float64(contrasts)),
		Counter(prefix+"sdad_calls_total", "SDAD-CS discretization invocations.", float64(s.SDADCalls)),
		Counter(prefix+"splits_total", "Median splits performed by SDAD-CS.", float64(s.Splits)),
		Counter(prefix+"boxes_explored_total", "Partition boxes explored by SDAD-CS.", float64(s.BoxesExplored)),
		Counter(prefix+"merge_attempts_total", "Bottom-up merge attempts.", float64(s.MergeAttempts)),
		Counter(prefix+"merge_ops_total", "Successful space merges.", float64(s.MergeOps)),
		Counter(prefix+"bitmap_builds_total", "Bitmaps constructed for the dataset index.", float64(s.BitmapBuilds)),
		Counter(prefix+"bitmap_index_reuses_total", "Mine calls that reused an already-built index.", float64(s.BitmapIndexReuses)),
		Counter(prefix+"bitmap_and_ops_total", "Cover AND value-bitmap intersections.", float64(s.BitmapAndOps)),
		Counter(prefix+"bitmap_popcounts_total", "Popcount passes over covers and group masks.", float64(s.BitmapPopcounts)),
		Counter(prefix+"threshold_updates_total", "Top-k admission-threshold changes.", float64(s.ThresholdUpdates)),
		Gauge(prefix+"threshold", "Current top-k admission threshold.", s.Threshold),
	}
	if len(prune.Samples) > 0 {
		fams = append(fams, prune)
	}
	if len(levels.Samples) > 0 {
		fams = append(fams, levels)
	}
	fams = append(fams,
		HistogramFamily(prefix+"node_eval_seconds", "Per-node evaluation latency.", nil, s.NodeEval),
		Counter(prefix+"remine_windows_total", "Stream windows re-mined.", float64(s.Remine.Count)),
		Counter(prefix+"remine_seconds_total", "Cumulative stream re-mine wall time.", float64(s.Remine.TotalNanos)/1e9),
		Counter(prefix+"trace_events_total", "Decision-trace events emitted.", float64(s.TraceEvents)),
		Counter(prefix+"trace_dropped_total", "Decision-trace events dropped on ring overflow.", float64(s.TraceDropped)),
	)
	return fams
}
