package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

// ctxKey is the private key space for correlation values.
type ctxKey int

const (
	ctxRequestID ctxKey = iota
	ctxJobID
	ctxLogger
)

// NewID mints a correlation ID: prefix + "_" + 8 random hex bytes
// ("req_1f2a9c03d4e5b687"). IDs are opaque; only uniqueness matters.
func NewID(prefix string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; an all-zero ID still
		// functions as a (non-unique) correlation value.
		return prefix + "_0000000000000000"
	}
	return prefix + "_" + hex.EncodeToString(b[:])
}

// WithRequestID attaches a request correlation ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// RequestID returns the request correlation ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// WithJobID attaches a job correlation ID to the context.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxJobID, id)
}

// JobID returns the job correlation ID, or "".
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(ctxJobID).(string)
	return id
}

// WithLogger attaches a logger to the context so layers below the one
// that owns the logger (the engine dispatcher, notably) can emit
// correlated records without a structural dependency on their caller.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxLogger, l)
}

// Log returns the context's logger, or the Nop logger. Never nil.
func Log(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxLogger).(*slog.Logger); ok && l != nil {
		return l
	}
	return nop
}

// ContextHandler decorates an slog.Handler so records emitted through
// *Context logging methods pick up the request_id / job_id correlation
// values carried by the context. One grep for either ID then
// reconstructs a request's (or job's) full lifecycle across components.
type ContextHandler struct {
	Inner slog.Handler
}

// Enabled defers to the wrapped handler.
func (h ContextHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.Inner.Enabled(ctx, lvl)
}

// Handle stamps correlation attributes from ctx onto the record.
func (h ContextHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := RequestID(ctx); id != "" {
		r.AddAttrs(slog.String("request_id", id))
	}
	if id := JobID(ctx); id != "" {
		r.AddAttrs(slog.String("job_id", id))
	}
	return h.Inner.Handle(ctx, r)
}

// WithAttrs wraps the inner handler's derived handler.
func (h ContextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ContextHandler{Inner: h.Inner.WithAttrs(attrs)}
}

// WithGroup wraps the inner handler's derived handler.
func (h ContextHandler) WithGroup(name string) slog.Handler {
	return ContextHandler{Inner: h.Inner.WithGroup(name)}
}
