package obs

import (
	"runtime"
)

// RuntimeFamilies snapshots the Go runtime for exposition: goroutine
// count, heap occupancy, and GC cycle/pause totals. Names follow the
// conventional go_* vocabulary so standard dashboards light up unchanged.
func RuntimeFamilies() []Family {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []Family{
		Gauge("go_goroutines", "Number of goroutines that currently exist.", float64(runtime.NumGoroutine())),
		Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc)),
		Gauge("go_memstats_heap_inuse_bytes", "Bytes in in-use heap spans.", float64(ms.HeapInuse)),
		Gauge("go_memstats_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects)),
		Gauge("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.", float64(ms.Sys)),
		Gauge("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.", float64(ms.NextGC)),
		Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC)),
		Counter("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9),
	}
}
