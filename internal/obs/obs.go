// Package obs is the service observability layer: structured logging
// (log/slog) with per-request and per-job correlation IDs carried through
// context.Context, RED middleware for HTTP surfaces (request/error
// counters, latency histograms, in-flight gauge, access logs, panic
// recovery), and a hand-rolled Prometheus text-exposition encoder with a
// strict lint-grade parser.
//
// Like internal/metrics and internal/trace, the package is a standard-
// library-only dependency leaf below the serving layer: internal/serve,
// internal/engine and the commands thread it through; nothing in the
// mining hot path depends on it. The disabled states are cheap: Nop()
// returns a logger whose handler refuses every level before any attribute
// is materialized, and obs.Log on a bare context returns that same
// logger, so an un-instrumented engine call costs two predictable
// branches per Mine — not per node.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Config selects the process-wide logging surface. The zero value is
// text-format INFO to stderr — the conventional operator default.
type Config struct {
	// Level is the minimum level emitted: debug | info | warn | error
	// (default info).
	Level string
	// Format selects the handler: text | json (default text).
	Format string
	// Output receives the log stream (default os.Stderr).
	Output io.Writer
}

// ParseLevel resolves a level name ("" = info).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger builds the root logger: a text or JSON slog handler at the
// configured level, wrapped in ContextHandler so every record emitted
// under a correlated context automatically carries request_id / job_id.
func (c Config) NewLogger() (*slog.Logger, error) {
	lvl, err := ParseLevel(c.Level)
	if err != nil {
		return nil, err
	}
	out := c.Output
	if out == nil {
		out = os.Stderr
	}
	var h slog.Handler
	switch strings.ToLower(c.Format) {
	case "", "text":
		h = slog.NewTextHandler(out, &slog.HandlerOptions{Level: lvl})
	case "json":
		h = slog.NewJSONHandler(out, &slog.HandlerOptions{Level: lvl})
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", c.Format)
	}
	return slog.New(ContextHandler{Inner: h}), nil
}

// nopHandler refuses every level, so a Nop logger never materializes
// records or attributes.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

var nop = slog.New(nopHandler{})

// Nop returns the disabled logger: every level is refused before any
// attribute is evaluated into a record. Use it wherever a *slog.Logger is
// required but the caller configured no logging.
func Nop() *slog.Logger { return nop }

// Or returns l, or the Nop logger when l is nil — the normalization every
// Options-style struct applies once at construction.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nop
	}
	return l
}
